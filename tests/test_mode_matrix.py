"""S4: one trajectory across the whole mode matrix.

The repo accumulated several orthogonal execution modes — array backend,
kernel hot path, propensity rebuild path, miss batching, and now the
campaign driver.  Pairwise agreement is asserted where each mode was
introduced; this matrix asserts the global invariant in one place: every
valid combination replays the *same* fixed-seed trajectory, byte for byte
(occupancy digest) and bit for bit (simulated clock).

The torch backend is a tolerance-parity backend, not a bit-exact one
(float32 GEMM blocking differs from BLAS — see ``tests/test_backend.py``),
so digests are asserted shared *within* each backend group; torch rows
auto-skip when torch is not importable.
"""

import numpy as np
import pytest

from repro.campaign import ReplicaCampaign, ReplicaSpec, occupancy_digest
from repro.core.engine import TensorKMCEngine
from repro.lattice import LatticeState
from repro.parallel import SublatticeKMC

N_STEPS = 40
N_CYCLES = 6


def _torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except Exception:
        return False
    return True


needs_torch = pytest.mark.skipif(
    not _torch_available(), reason="torch not importable in this environment"
)

BACKENDS = [
    pytest.param(None, id="backend-default"),
    pytest.param("numpy", id="backend-numpy"),
    pytest.param("torch", id="backend-torch", marks=needs_torch),
]

HOT_PATHS = ("vectorized", "legacy")

#: Valid (rebuild_path, batching) combinations — the delta path requires
#: batched full evaluation, so (delta, scalar) is rejected at construction
#: and deliberately absent.
REBUILD_BATCHING = (
    ("auto", "auto"),
    ("full", "batched"),
    ("full", "scalar"),
    ("delta", "batched"),
)


def _skip_invalid(rebuild_path, hot_path):
    if rebuild_path == "delta" and hot_path == "legacy":
        pytest.skip("the delta rebuild path requires the vectorized hot path")


def _make_engine(tet, pot, backend, rebuild_path, batching, hot_path, **kw):
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(np.random.default_rng(9), 0.05, 0.004)
    engine = TensorKMCEngine(
        lattice, pot, tet, temperature=900.0,
        rng=np.random.default_rng(10), backend=backend,
        rebuild_path=rebuild_path, batching=batching, **kw,
    )
    if hot_path != "vectorized":
        engine.kernel.set_hot_path(hot_path)
    return engine


@pytest.fixture(scope="module")
def reference(tet_small, eam_small):
    """Digest + clock of the default-mode run every combination must hit."""
    engine = _make_engine(tet_small, eam_small, None, "auto", "auto",
                          "vectorized")
    executed = engine.run(n_steps=N_STEPS, on_no_moves="stop")
    assert executed == N_STEPS
    return occupancy_digest(engine.lattice), engine.time


class TestModeMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("hot_path", HOT_PATHS)
    @pytest.mark.parametrize("rebuild_path,batching", REBUILD_BATCHING)
    def test_shared_digest_and_clock(
        self, tet_small, eam_small, reference, backend, hot_path,
        rebuild_path, batching,
    ):
        _skip_invalid(rebuild_path, hot_path)
        engine = _make_engine(
            tet_small, eam_small, backend, rebuild_path, batching, hot_path
        )
        executed = engine.run(n_steps=N_STEPS, on_no_moves="stop")
        assert executed == N_STEPS
        got = (occupancy_digest(engine.lattice), engine.time)
        if backend == "torch":
            # Tolerance-parity backend: assert internal consistency of the
            # torch group against its own default-mode run instead.
            torch_ref = _make_engine(
                tet_small, eam_small, "torch", "auto", "auto", "vectorized"
            )
            torch_ref.run(n_steps=N_STEPS, on_no_moves="stop")
            assert got == (
                occupancy_digest(torch_ref.lattice), torch_ref.time
            )
        else:
            assert got == reference

    @pytest.mark.parametrize("rebuild_path,batching", REBUILD_BATCHING)
    @pytest.mark.parametrize("hot_path", HOT_PATHS)
    def test_campaign_driver_joins_the_matrix(
        self, tet_small, eam_small, reference, hot_path, rebuild_path,
        batching,
    ):
        """The shared-batch campaign replays the same trajectory too."""
        _skip_invalid(rebuild_path, hot_path)

        def factory(spec):
            return _make_engine(
                tet_small, eam_small, None, rebuild_path, batching, hot_path
            )

        results = ReplicaCampaign(
            [ReplicaSpec("m", seed=0, n_steps=N_STEPS)], factory,
            mode="shared",
        ).run()
        assert (results[0].digest, results[0].time) == reference


class TestRowCacheJoinsTheMatrix:
    """The persistent row cache is bitwise inert in every mode combo.

    Each combination runs under the NNP (the cache's ``auto`` target) with
    a 16-entry byte budget — far below the working set, so hits, evictions
    and re-inserts all cycle continuously — and must replay the exact
    digest + clock of its own ``row_cache="off"`` twin.  Torch rows compare
    within the torch group like the main matrix does.
    """

    #: 16 entries of 16 B, expressed in the CLI's MB unit.
    TINY_MB = 16 * 16 / (1024.0 * 1024.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("hot_path", HOT_PATHS)
    @pytest.mark.parametrize("rebuild_path,batching", REBUILD_BATCHING)
    def test_cache_cycling_is_bitwise_inert(
        self, tet_small, nnp_small, backend, hot_path, rebuild_path,
        batching,
    ):
        _skip_invalid(rebuild_path, hot_path)
        off = _make_engine(
            tet_small, nnp_small, backend, rebuild_path, batching, hot_path,
            row_cache="off",
        )
        off.run(n_steps=N_STEPS, on_no_moves="stop")
        on = _make_engine(
            tet_small, nnp_small, backend, rebuild_path, batching, hot_path,
            row_cache="on", row_cache_mb=self.TINY_MB,
        )
        on.run(n_steps=N_STEPS, on_no_moves="stop")
        assert occupancy_digest(on.lattice) == occupancy_digest(off.lattice)
        assert on.time == off.time
        counters = on.kernel.counters()
        if batching != "scalar":
            # Scalar batching evaluates states one row at a time and never
            # enters the batched dedup path, so the cache is never probed
            # there; every batched combo must actually exercise it.
            assert counters["row_cache_hits"] > 0


# ----------------------------------------------------------------------
# The process executor joins the matrix: where the rank loops *run* is
# one more orthogonal mode, and it must be trajectory-invisible across
# every combination of the others.
# ----------------------------------------------------------------------
PARALLEL_REBUILDS = ("auto", "full", "delta")


def _parallel_sim(tet, pot, backend, rebuild_path, hot_path, **kw):
    # 4 ranks need >= 4 cells of sector width per rank: 16^3 is the floor.
    lattice = LatticeState((16, 16, 16))
    lattice.randomize_alloy(np.random.default_rng(3), 0.05, 0.003)
    sim = SublatticeKMC(
        lattice, pot, tet, n_ranks=4, temperature=900.0, t_stop=2e-10,
        seed=5, backend=backend, rebuild_path=rebuild_path, **kw,
    )
    if hot_path != "vectorized":
        for rank in sim.ranks:
            rank.kernel.set_hot_path(hot_path)
    return sim


def _parallel_identity(sim):
    sim.run(N_CYCLES)
    try:
        return (
            occupancy_digest(sim.gather_global()),
            sim.time,
            tuple(c.events for c in sim.cycles),
        )
    finally:
        sim.close()


class TestProcessExecutorJoinsTheMatrix:
    @pytest.fixture(scope="class")
    def parallel_reference(self, tet_small, eam_small):
        """Inline default-mode identity every process combo must replay."""
        return _parallel_identity(
            _parallel_sim(tet_small, eam_small, None, "auto", "vectorized")
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("hot_path", HOT_PATHS)
    @pytest.mark.parametrize("rebuild_path", PARALLEL_REBUILDS)
    def test_process_replays_inline_trajectory(
        self, tet_small, eam_small, parallel_reference, backend, hot_path,
        rebuild_path,
    ):
        _skip_invalid(rebuild_path, hot_path)
        got = _parallel_identity(
            _parallel_sim(
                tet_small, eam_small, backend, rebuild_path, hot_path,
                executor="process",
            )
        )
        if backend == "torch":
            torch_ref = _parallel_identity(
                _parallel_sim(
                    tet_small, eam_small, "torch", rebuild_path, hot_path
                )
            )
            assert got == torch_ref
        else:
            assert got == parallel_reference

    @pytest.mark.parametrize("row_cache", ("off", "on"))
    def test_row_cache_rows_join_the_matrix(
        self, tet_small, nnp_small, row_cache
    ):
        """NNP rows: the shared inline cache and the per-worker forked
        replicas must both be bitwise inert."""
        kw = {"row_cache": row_cache}
        if row_cache == "on":
            kw["row_cache_mb"] = 64 * 16 / (1024.0 * 1024.0)
        inline = _parallel_identity(
            _parallel_sim(tet_small, nnp_small, None, "auto", "vectorized", **kw)
        )
        process = _parallel_identity(
            _parallel_sim(
                tet_small, nnp_small, None, "auto", "vectorized",
                executor="process", **kw,
            )
        )
        assert process == inline
