"""Parallel checkpoint/restart: bit-exact continuation of a sublattice world."""

import numpy as np
import pytest

from repro.io import (
    checkpoint_kind,
    load_checkpoint,
    load_parallel_checkpoint,
    save_checkpoint,
    save_parallel_checkpoint,
)
from repro.core import TensorKMCEngine
from repro.lattice import LatticeState
from repro.parallel import FaultEvent, FaultPlan, SublatticeKMC, run_resilient


def _alloy(seed=3, vac=0.003, shape=(16, 16, 16)):
    lat = LatticeState(shape)
    lat.randomize_alloy(np.random.default_rng(seed), 0.05, vac)
    return lat


def _sim(tet, pot, seed=5, n_ranks=4, lattice=None, **kw):
    return SublatticeKMC(
        _alloy() if lattice is None else lattice, pot, tet,
        n_ranks=n_ranks, temperature=900.0, t_stop=2e-10, seed=seed, **kw,
    )


class TestBitExactResume:
    def test_kill_mid_campaign_and_resume(self, tmp_path, tet_small, eam_small):
        """The tentpole invariant: interrupt at cycle 6, resume, and the
        trajectory (occupancy, per-cycle event log, clock, cursor) is
        bit-identical to an uninterrupted 12-cycle run."""
        reference = _sim(tet_small, eam_small)
        reference.run(12)

        interrupted = _sim(tet_small, eam_small)
        interrupted.run(6)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, interrupted)
        del interrupted  # the "killed" campaign

        resumed = load_parallel_checkpoint(path, eam_small, tet=tet_small)
        resumed.run(6)

        assert np.array_equal(
            resumed.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        assert [c.events for c in resumed.cycles] == [
            c.events for c in reference.cycles
        ]
        assert [c.sector for c in resumed.cycles] == [
            c.sector for c in reference.cycles
        ]
        assert resumed.time == reference.time
        assert resumed.sector_index == reference.sector_index
        for a, b in zip(resumed.ranks, reference.ranks):
            assert a.events == b.events
            assert a.rejected == b.rejected

    def test_rank_rng_streams_restored(self, tmp_path, tet_small, eam_small):
        sim = _sim(tet_small, eam_small)
        sim.run(5)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, sim)
        resumed = load_parallel_checkpoint(path, eam_small, tet=tet_small)
        for a, b in zip(resumed.ranks, sim.ranks):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_ghosts_consistent_after_load(self, tmp_path, tet_small, eam_small):
        sim = _sim(tet_small, eam_small)
        sim.run(4)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, sim)
        resumed = load_parallel_checkpoint(path, eam_small, tet=tet_small)
        assert resumed.check_ghost_consistency()

    def test_world_stats_and_history_restored(self, tmp_path, tet_small, eam_small):
        sim = _sim(tet_small, eam_small)
        sim.run(7)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, sim)
        resumed = load_parallel_checkpoint(path, eam_small, tet=tet_small)
        assert resumed.world.stats == sim.world.stats
        assert len(resumed.cycles) == 7
        assert resumed.cycles == sim.cycles
        assert resumed.total_events == sim.total_events

    def test_save_is_idempotent(self, tmp_path, tet_small, eam_small):
        """save -> load -> save produces a byte-equal set of arrays."""
        sim = _sim(tet_small, eam_small)
        sim.run(3)
        p1 = str(tmp_path / "a.npz")
        p2 = str(tmp_path / "b.npz")
        save_parallel_checkpoint(p1, sim)
        resumed = load_parallel_checkpoint(p1, eam_small, tet=tet_small)
        save_parallel_checkpoint(p2, resumed)
        with np.load(p1) as d1, np.load(p2) as d2:
            assert sorted(d1.files) == sorted(d2.files)
            for name in d1.files:
                assert np.array_equal(d1[name], d2[name]), name

    def test_resume_from_resumed(self, tmp_path, tet_small, eam_small):
        """Chained restarts stay on the reference trajectory."""
        reference = _sim(tet_small, eam_small)
        reference.run(9)
        sim = _sim(tet_small, eam_small)
        path = str(tmp_path / "pck.npz")
        for leg in (3, 3, 3):
            sim.run(leg)
            save_parallel_checkpoint(path, sim)
            sim = load_parallel_checkpoint(path, eam_small, tet=tet_small)
        assert np.array_equal(
            sim.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        assert sim.time == reference.time


class TestNNPBatchedResume:
    """Batched NNP campaigns must checkpoint/resume bit-exactly.

    PR 4 regression: with the deterministic tiled-GEMM kernel the NNP takes
    the batched miss path under ``batching="auto"``, and after a resume (or
    a rollback-and-replay recovery) the set of cache misses — hence the
    batch shapes — differs from the uninterrupted run.  Row invariance of
    the kernel is exactly what makes that irrelevant; these tests pin it.
    """

    def _nnp_sim(self, tet, pot, **kw):
        return _sim(tet, pot, lattice=_alloy(seed=7, vac=0.003), **kw)

    def test_batched_nnp_resume_is_bit_exact(self, tmp_path, tet_small, nnp_small):
        reference = self._nnp_sim(tet_small, nnp_small)
        reference.run(8)
        assert reference.summary()["rate_batches"] >= 1  # really batched

        interrupted = self._nnp_sim(tet_small, nnp_small)
        interrupted.run(4)
        path = str(tmp_path / "nnp.npz")
        save_parallel_checkpoint(path, interrupted)
        del interrupted

        resumed = load_parallel_checkpoint(path, nnp_small, tet=tet_small)
        resumed.run(4)
        assert np.array_equal(
            resumed.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        assert [c.events for c in resumed.cycles] == [
            c.events for c in reference.cycles
        ]
        assert resumed.time == reference.time

    def test_batched_nnp_kill_and_run_resilient(
        self, tmp_path, tet_small, nnp_small
    ):
        """Kill a rank mid-campaign; the recovered batched-NNP trajectory is
        bit-identical to the fault-free run."""
        reference = self._nnp_sim(tet_small, nnp_small)
        reference.run(8)

        plan = FaultPlan(events=[FaultEvent("kill", cycle=4, rank=0)])
        sim = self._nnp_sim(tet_small, nnp_small, fault_plan=plan)
        path = str(tmp_path / "nnp_resilient.npz")
        sim, recoveries = run_resilient(
            sim, 8, path, nnp_small, tet=tet_small, checkpoint_every=3
        )
        assert recoveries == 1
        assert sim.summary()["rate_batches"] >= 1
        assert np.array_equal(
            sim.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        assert [c.events for c in sim.cycles] == [
            c.events for c in reference.cycles
        ]
        assert sim.time == reference.time


class TestCrossExecutorResume:
    """Checkpoints are executor-transparent: an archive written under either
    executor resumes bit-exactly under the other (the executor is a property
    of the running world, deliberately not stored in the archive)."""

    @pytest.fixture(scope="class")
    def reference(self, tet_small, eam_small):
        sim = _sim(tet_small, eam_small)
        sim.run(12)
        return (
            sim.gather_global().occupancy,
            sim.time,
            [c.events for c in sim.cycles],
        )

    def _assert_on_trajectory(self, sim, reference):
        occupancy, clock, events = reference
        assert np.array_equal(sim.gather_global().occupancy, occupancy)
        assert sim.time == clock
        assert [c.events for c in sim.cycles] == events

    @pytest.mark.parametrize(
        "writer,reader",
        [("inline", "process"), ("process", "inline"), ("process", "process")],
    )
    def test_resume_across_executors(
        self, tmp_path, tet_small, eam_small, reference, writer, reader
    ):
        interrupted = _sim(tet_small, eam_small, executor=writer)
        interrupted.run(6)
        path = str(tmp_path / f"{writer}-{reader}.npz")
        save_parallel_checkpoint(path, interrupted)
        interrupted.close()

        kw = {"executor": reader}
        if reader == "process":
            kw["workers"] = 2  # resume under a differently-sized pool too
        resumed = load_parallel_checkpoint(path, eam_small, tet=tet_small, **kw)
        try:
            assert resumed.executor_kind == reader
            resumed.run(6)
            self._assert_on_trajectory(resumed, reference)
        finally:
            resumed.close()

    def test_archives_are_byte_identical_across_executors(
        self, tmp_path, tet_small, eam_small
    ):
        inline = _sim(tet_small, eam_small)
        inline.run(5)
        proc = _sim(tet_small, eam_small, executor="process")
        proc.run(5)
        p_inline = str(tmp_path / "inline.npz")
        p_proc = str(tmp_path / "proc.npz")
        save_parallel_checkpoint(p_inline, inline)
        save_parallel_checkpoint(p_proc, proc)
        proc.close()
        from repro.io.checkpoint import _CYCLE_FIELDS

        timing = tuple(
            i for i, f in enumerate(_CYCLE_FIELDS)
            if f.endswith("_seconds")
        )
        with np.load(p_inline) as d1, np.load(p_proc) as d2:
            assert sorted(d1.files) == sorted(d2.files)
            for name in d1.files:
                if name == "cycles":
                    # Wall-clock columns legitimately differ between
                    # executors; every protocol/counter column must not.
                    kept = [
                        i for i in range(d1[name].shape[1])
                        if i not in timing
                    ]
                    assert np.array_equal(
                        d1[name][:, kept], d2[name][:, kept]
                    )
                    continue
                assert np.array_equal(d1[name], d2[name]), name

    @pytest.mark.parametrize(
        "writer,reader", [("inline", "process"), ("process", "inline")]
    )
    def test_kill_recovery_crosses_executors(
        self, tmp_path, tet_small, eam_small, reference, writer, reader
    ):
        """A campaign checkpointed under one executor survives a scripted
        rank kill when finished with run_resilient under the other."""
        first = _sim(tet_small, eam_small, executor=writer)
        first.run(6)
        path = str(tmp_path / "cross.npz")
        save_parallel_checkpoint(path, first)
        first.close()

        plan = FaultPlan(events=[FaultEvent("kill", cycle=8, rank=1)])
        kw = {"executor": reader}
        sim = load_parallel_checkpoint(
            path, eam_small, tet=tet_small, fault_plan=plan, **kw
        )
        sim, recoveries = run_resilient(
            sim, 6, path, eam_small, tet=tet_small, checkpoint_every=2
        )
        try:
            assert recoveries == 1
            assert sim.executor_kind == reader
            self._assert_on_trajectory(sim, reference)
        finally:
            sim.close()

    def test_resume_rejects_unknown_executor(
        self, tmp_path, tet_small, eam_small
    ):
        sim = _sim(tet_small, eam_small)
        sim.run(2)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, sim)
        with pytest.raises(ValueError, match="unknown executor"):
            load_parallel_checkpoint(
                path, eam_small, tet=tet_small, executor="threads"
            )


class TestKindDetection:
    def test_kind_fields(self, tmp_path, tet_small, eam_small):
        par = str(tmp_path / "par.npz")
        ser = str(tmp_path / "ser.npz")
        sim = _sim(tet_small, eam_small)
        sim.run(2)
        save_parallel_checkpoint(par, sim)
        lattice = LatticeState((8, 8, 8))
        lattice.randomize_alloy(np.random.default_rng(1), 0.05, 0.003)
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, temperature=900.0,
            rng=np.random.default_rng(2),
        )
        engine.run(n_steps=3)
        save_checkpoint(ser, engine)
        assert checkpoint_kind(par) == "parallel"
        assert checkpoint_kind(ser) == "serial"

    def test_wrong_loader_rejected(self, tmp_path, tet_small, eam_small):
        par = str(tmp_path / "par.npz")
        ser = str(tmp_path / "ser.npz")
        sim = _sim(tet_small, eam_small)
        sim.run(2)
        save_parallel_checkpoint(par, sim)
        lattice = LatticeState((8, 8, 8))
        lattice.randomize_alloy(np.random.default_rng(1), 0.05, 0.003)
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, temperature=900.0,
            rng=np.random.default_rng(2),
        )
        save_checkpoint(ser, engine)
        with pytest.raises(ValueError, match="load_parallel_checkpoint"):
            load_checkpoint(par, eam_small, tet=tet_small)
        with pytest.raises(ValueError, match="load_checkpoint"):
            load_parallel_checkpoint(ser, eam_small, tet=tet_small)


class TestValidation:
    def test_corrupted_rank_occupancy_detected(self, tmp_path, tet_small, eam_small):
        sim = _sim(tet_small, eam_small)
        sim.run(2)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, sim)
        data = dict(np.load(path, allow_pickle=False))
        occ = data["rank0_occupancy"].copy()
        occ[occ == sim.ranks[0].vacancy_code] = 0  # erase rank 0's vacancies
        data["rank0_occupancy"] = occ
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="slot registry"):
            load_parallel_checkpoint(path, eam_small, tet=tet_small)

    def test_wrong_window_shape_detected(self, tmp_path, tet_small, eam_small):
        sim = _sim(tet_small, eam_small)
        sim.run(2)
        path = str(tmp_path / "pck.npz")
        save_parallel_checkpoint(path, sim)
        data = dict(np.load(path, allow_pickle=False))
        data["rank0_occupancy"] = data["rank0_occupancy"][:, :-1]
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="window shape"):
            load_parallel_checkpoint(path, eam_small, tet=tet_small)
