"""Property-based tests of the periodic ghost-image machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import DomainBox, LocalWindow
from repro.parallel.ghost import in_padded_box, window_images

dims = st.integers(min_value=4, max_value=14)
ghost_widths = st.integers(min_value=0, max_value=4)


@st.composite
def window_configs(draw):
    gx = draw(dims)
    gy = draw(dims)
    gz = draw(dims)
    lo = (
        draw(st.integers(0, gx - 1)),
        draw(st.integers(0, gy - 1)),
        draw(st.integers(0, gz - 1)),
    )
    shape = (
        draw(st.integers(1, gx - 0)),
        draw(st.integers(1, gy - 0)),
        draw(st.integers(1, gz - 0)),
    )
    hi = tuple(min(l + s, g) for l, s, g in zip(lo, shape, (gx, gy, gz)))
    hi = tuple(max(h, l + 1) for l, h in zip(lo, hi))
    ghost = draw(ghost_widths)
    cell = (
        draw(st.integers(0, gx - 1)),
        draw(st.integers(0, gy - 1)),
        draw(st.integers(0, gz - 1)),
    )
    return (gx, gy, gz), lo, hi, ghost, cell


class TestWindowImages:
    @given(cfg=window_configs())
    @settings(max_examples=60, deadline=None)
    def test_images_are_exactly_the_matching_padded_cells(self, cfg):
        """window_images == brute-force enumeration over all padded cells."""
        global_shape, lo, hi, ghost, cell = cfg
        window = LocalWindow(DomainBox(lo, hi), global_shape, ghost)
        images = {tuple(r) for r in window_images(window, np.array(cell))}
        brute = set()
        px, py, pz = window.padded_shape
        for i in range(px):
            for j in range(py):
                for k in range(pz):
                    g = window.global_cell_of_padded(np.array([i, j, k]))
                    if tuple(g) == tuple(np.mod(cell, global_shape)):
                        brute.add((i, j, k))
        assert images == brute

    @given(cfg=window_configs())
    @settings(max_examples=60, deadline=None)
    def test_in_padded_box_iff_images_exist(self, cfg):
        global_shape, lo, hi, ghost, cell = cfg
        window = LocalWindow(DomainBox(lo, hi), global_shape, ghost)
        has_images = window_images(window, np.array(cell)).shape[0] > 0
        claimed = bool(
            in_padded_box(np.array([cell]), window.box, ghost, global_shape)[0]
        )
        assert has_images == claimed

    @given(cfg=window_configs())
    @settings(max_examples=40, deadline=None)
    def test_local_cells_always_have_an_image(self, cfg):
        global_shape, lo, hi, ghost, _ = cfg
        window = LocalWindow(DomainBox(lo, hi), global_shape, ghost)
        # the box's own lowest cell is always inside the window
        own = np.mod(np.array(lo), np.array(global_shape))
        assert window_images(window, own).shape[0] >= 1
