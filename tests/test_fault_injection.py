"""Fault injection and rollback-and-replay recovery.

Every fault class (drop / duplicate / delay / rank-kill) must either surface
as a structured :class:`ProtocolError` carrying the ``(rank, tag, cycle)``
coordinate, or — under the resilient driver — be recovered from by rolling
back to the last cycle-boundary checkpoint, with the recovered trajectory
bit-identical to a fault-free run.
"""

import numpy as np
import pytest

from repro.lattice import LatticeState
from repro.parallel import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    ProtocolError,
    SimCommWorld,
    SublatticeKMC,
    run_resilient,
)
from repro.parallel.ghost import GHOST_TAG


def _alloy(seed=3):
    lat = LatticeState((16, 16, 16))
    lat.randomize_alloy(np.random.default_rng(seed), 0.05, 0.003)
    return lat


def _sim(tet, pot, plan=None, n_ranks=4, seed=5):
    return SublatticeKMC(
        _alloy(), pot, tet, n_ranks=n_ranks, temperature=900.0,
        t_stop=2e-10, seed=seed, fault_plan=plan,
    )


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("explode", cycle=0, rank=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(p_drop=1.5)

    def test_events_are_one_shot(self):
        plan = FaultPlan(events=[FaultEvent("drop", cycle=1, rank=0)])
        assert plan.pending_events == 1
        assert plan.action_for_send(1, 0, 1, "t") == "drop"
        assert plan.pending_events == 0
        assert plan.action_for_send(1, 0, 1, "t") is None
        assert plan.fired == [("drop", 1, "0->1 tag='t'")]

    def test_kills_are_one_shot(self):
        plan = FaultPlan(events=[FaultEvent("kill", cycle=2, rank=1)])
        assert plan.kills_due(0) == []
        assert plan.kills_due(3) == [1]  # late arming still fires
        assert plan.kills_due(3) == []

    def test_event_coordinate_filters(self):
        event = FaultEvent("drop", cycle=4, rank=0, tag="ghost", dest=2)
        assert event.matches_send(4, 0, 2, "ghost")
        assert not event.matches_send(3, 0, 2, "ghost")
        assert not event.matches_send(4, 1, 2, "ghost")
        assert not event.matches_send(4, 0, 1, "ghost")
        assert not event.matches_send(4, 0, 2, "other")

    def test_seeded_faults_are_reproducible(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan(seed=7, p_drop=0.3, p_delay=0.3)
            draws.append(
                [plan.action_for_send(0, 0, 1, "t") for _ in range(50)]
            )
        assert draws[0] == draws[1]
        assert "drop" in draws[0] and "delay" in draws[0]


class TestProtocolError:
    def test_is_a_runtime_error_with_context(self):
        err = ProtocolError(
            "boom", rank=3, tag="ghost", cycle=7, transcript=("a", "b")
        )
        assert isinstance(err, RuntimeError)
        assert (err.rank, err.tag, err.cycle) == (3, "ghost", 7)
        assert err.transcript == ("a", "b")
        assert "rank=3" in str(err) and "cycle=7" in str(err)
        assert "recent traffic" in str(err)

    def test_recv_missing_carries_coordinates(self):
        world = SimCommWorld(2)
        world.begin_cycle(5)
        with pytest.raises(ProtocolError) as exc:
            world.comm(1).recv(0, "t")
        assert exc.value.rank == 1
        assert exc.value.tag == "t"
        assert exc.value.cycle == 5

    def test_recv_all_contract(self):
        world = SimCommWorld(3)
        world.comm(0).send(2, "t", 1)
        with pytest.raises(ProtocolError, match="missing"):
            world.comm(2).recv_all("t", expected_sources=[0, 1])
        world.comm(0).send(2, "t", 1)
        world.comm(0).send(2, "t", 1)
        with pytest.raises(ProtocolError, match="duplicate"):
            world.comm(2).recv_all("t", expected_sources=[0])

    def test_undrained_mailbox_fails_loudly(self):
        world = SimCommWorld(2)
        world.comm(0).send(1, "stray", 42)
        with pytest.raises(ProtocolError) as exc:
            world.assert_drained()
        assert exc.value.rank == 1
        assert exc.value.tag == "stray"


@pytest.mark.parametrize("kind", [k for k in FAULT_KINDS if k != "kill"])
class TestMessageFaults:
    def test_fault_raises_structured_error(self, tet_small, eam_small, kind):
        plan = FaultPlan(
            events=[FaultEvent(kind, cycle=2, rank=0, tag=GHOST_TAG)]
        )
        sim = _sim(tet_small, eam_small, plan)
        with pytest.raises(ProtocolError) as exc:
            sim.run(8)
        assert exc.value.cycle == 2
        assert exc.value.tag == GHOST_TAG
        assert exc.value.rank is not None
        assert len(exc.value.transcript) > 0
        assert len(sim.cycles) == 2  # the faulted cycle never committed


class TestRankKill:
    def test_kill_raises_with_coordinates(self, tet_small, eam_small):
        plan = FaultPlan(events=[FaultEvent("kill", cycle=3, rank=1)])
        sim = _sim(tet_small, eam_small, plan)
        with pytest.raises(ProtocolError) as exc:
            sim.run(8)
        assert exc.value.cycle == 3
        assert exc.value.tag == GHOST_TAG  # survivors miss the ghost message
        assert len(sim.cycles) == 3

    def test_all_ranks_dead_raises(self, tet_small, eam_small):
        plan = FaultPlan(
            events=[FaultEvent("kill", cycle=0, rank=r) for r in range(2)]
        )
        sim = _sim(tet_small, eam_small, plan, n_ranks=2)
        with pytest.raises(ProtocolError, match="every rank"):
            sim.cycle()

    def test_sends_to_dead_rank_are_counted(self, tet_small, eam_small):
        plan = FaultPlan(events=[FaultEvent("kill", cycle=1, rank=0)])
        sim = _sim(tet_small, eam_small, plan)
        with pytest.raises(ProtocolError):
            sim.run(4)
        assert sim.world.fault_stats.lost_to_dead_rank > 0


class TestRecovery:
    def test_kill_recovery_is_bit_exact(self, tmp_path, tet_small, eam_small):
        """Rank 0 dies at cycle 5; the resilient driver rolls back to the
        last checkpoint and replays — ending bit-identical to a run that
        never saw the fault."""
        reference = _sim(tet_small, eam_small)
        reference.run(12)

        plan = FaultPlan(events=[FaultEvent("kill", cycle=5, rank=0)])
        sim = _sim(tet_small, eam_small, plan)
        path = str(tmp_path / "resilient.npz")
        sim, recoveries = run_resilient(
            sim, 12, path, eam_small, tet=tet_small, checkpoint_every=4
        )
        assert recoveries == 1
        assert len(sim.cycles) == 12
        assert np.array_equal(
            sim.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        assert [c.events for c in sim.cycles] == [
            c.events for c in reference.cycles
        ]
        assert sim.time == reference.time

    @pytest.mark.parametrize("kind", ["drop", "duplicate", "delay"])
    def test_message_fault_recovery(self, tmp_path, tet_small, eam_small, kind):
        reference = _sim(tet_small, eam_small)
        reference.run(10)
        plan = FaultPlan(
            events=[FaultEvent(kind, cycle=3, rank=0, tag=GHOST_TAG)]
        )
        sim = _sim(tet_small, eam_small, plan)
        path = str(tmp_path / "resilient.npz")
        sim, recoveries = run_resilient(
            sim, 10, path, eam_small, tet=tet_small, checkpoint_every=2
        )
        assert recoveries == 1
        assert plan.pending_events == 0
        assert np.array_equal(
            sim.gather_global().occupancy,
            reference.gather_global().occupancy,
        )

    def test_seeded_chaos_recovery(self, tmp_path, tet_small, eam_small):
        """A lossy interconnect (seeded background drops/delays) still
        converges to the fault-free trajectory under recovery."""
        reference = _sim(tet_small, eam_small, n_ranks=2)
        reference.run(10)
        plan = FaultPlan(seed=42, p_drop=0.03, p_delay=0.02)
        sim = _sim(tet_small, eam_small, plan, n_ranks=2)
        path = str(tmp_path / "chaos.npz")
        sim, recoveries = run_resilient(
            sim, 10, path, eam_small, tet=tet_small,
            checkpoint_every=2, max_recoveries=64,
        )
        assert recoveries >= 1
        assert len(plan.fired) >= recoveries
        assert np.array_equal(
            sim.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        assert sim.time == reference.time

    def test_max_recoveries_reraise(self, tmp_path, tet_small, eam_small):
        # every ghost send from rank 0 at every early cycle drops: hopeless
        plan = FaultPlan(
            events=[
                FaultEvent("drop", cycle=c, rank=0, tag=GHOST_TAG, count=99)
                for c in range(8)
            ]
        )
        sim = _sim(tet_small, eam_small, plan)
        with pytest.raises(ProtocolError):
            run_resilient(
                sim, 8, str(tmp_path / "h.npz"), eam_small,
                tet=tet_small, max_recoveries=3,
            )

    def test_faulted_cycle_never_commits(self, tet_small, eam_small):
        """State guarded by recovery: a failed cycle leaves cycles/time
        untouched, so rollback from the checkpoint loses nothing."""
        plan = FaultPlan(
            events=[FaultEvent("drop", cycle=2, rank=0, tag=GHOST_TAG)]
        )
        sim = _sim(tet_small, eam_small, plan)
        with pytest.raises(ProtocolError):
            sim.run(8)
        assert len(sim.cycles) == 2
        assert sim.time == pytest.approx(2 * sim.t_stop)
