"""Batched big-fusion rate evaluation vs the scalar path.

The contract under test (paper Sec. 3.4/3.5 applied to rate evaluation):
batching cache misses through ``evaluate_batch`` / ``rates_batch`` changes
throughput, never physics.  Every per-row quantity must be *bit-identical*
to the scalar path — for counts-tabulated potentials because each row is an
independent exact reduction, and for the NNP because its inference runs
through the deterministic tiled-GEMM kernel (fixed call shapes, fixed
accumulation order), which is what lets ``batching="auto"`` take the
batched miss path for NNP campaigns too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.openkmc import OpenKMCEngine
from repro.core.engine import TensorKMCEngine
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.lattice import LatticeState
from repro.parallel.engine import SublatticeKMC

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev env
    HAVE_HYPOTHESIS = False


def _random_vets(evaluator, n, seed=0, vacancy_neighbors=False):
    """Random VET batch with vacancy centres (and optional vacancy 1NNs)."""
    rng = np.random.default_rng(seed)
    n_all = evaluator.tet.n_all
    vets = rng.integers(0, evaluator.n_elements, size=(n, n_all))
    vets[:, 0] = evaluator.vacancy_code
    if vacancy_neighbors:
        vets[:, 1:9] = evaluator.vacancy_code
    return vets


def _lattice_vets(lattice, tet):
    """The VETs of every vacancy in a lattice, in sorted-site order."""
    sites = sorted(int(s) for s in lattice.vacancy_ids)
    return np.stack(
        [lattice.occupancy[lattice.neighbor_ids(s, tet.all_offsets)] for s in sites]
    )


def _make_lattice(seed, shape=(6, 6, 6), vac=0.01):
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed), cu_fraction=0.05, vacancy_fraction=vac
    )
    return lattice


class TestTrialVetsBatch:
    def test_matches_scalar_rows(self, tet_small, eam_small):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _random_vets(ev, 7, seed=3)
        batch = ev.trial_vets_batch(vets)
        assert batch.shape == (7, 9, tet_small.n_all)
        for b in range(7):
            assert np.array_equal(batch[b], ev.trial_vets(vets[b]))

    def test_rejects_bad_shapes(self, tet_small, eam_small):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        with pytest.raises(ValueError):
            ev.trial_vets_batch(np.zeros(tet_small.n_all, dtype=np.int64))
        with pytest.raises(ValueError):
            ev.trial_vets_batch(np.zeros((3, tet_small.n_all + 1), dtype=np.int64))


class TestEvaluateBatch:
    def test_eam_bitwise_equal_to_scalar(self, tet_small, eam_small):
        """Counts-tabulated potentials: per-row results are bit-identical."""
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _lattice_vets(_make_lattice(21), tet_small)
        batch = ev.evaluate_batch(vets)
        assert len(batch) == vets.shape[0]
        for b, scalar in enumerate(ev.evaluate(v) for v in vets):
            row = batch.row(b)
            assert row.initial == scalar.initial
            assert np.array_equal(row.delta, scalar.delta)
            assert np.array_equal(row.valid, scalar.valid)
            assert np.array_equal(row.migrating_species, scalar.migrating_species)

    def test_nnp_bitwise_equal_to_scalar(self, tet_small, nnp_small):
        """The tiled kernel makes NNP rows batch-independent — bit-exact."""
        ev = VacancySystemEvaluator(tet_small, nnp_small)
        vets = _random_vets(ev, 6, seed=5)
        batch = ev.evaluate_batch(vets)
        for b in range(6):
            scalar = ev.evaluate(vets[b])
            row = batch.row(b)
            assert row.initial == scalar.initial
            assert np.array_equal(row.delta, scalar.delta)
            assert np.array_equal(row.valid, scalar.valid)

    def test_nnp_single_row_batch_is_bitwise(self, tet_small, nnp_small):
        """B=1 reproduces the scalar GEMM shapes exactly."""
        ev = VacancySystemEvaluator(tet_small, nnp_small)
        vet = _random_vets(ev, 1, seed=9)
        row = ev.evaluate_batch(vet).row(0)
        scalar = ev.evaluate(vet[0])
        assert row.initial == scalar.initial
        assert np.array_equal(row.delta, scalar.delta)

    def test_all_vacancy_neighbours(self, tet_small, eam_small):
        """A vacancy with only vacancy 1NNs has no executable hop."""
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _random_vets(ev, 3, seed=1, vacancy_neighbors=True)
        batch = ev.evaluate_batch(vets)
        assert not batch.valid.any()
        assert np.all(batch.delta == 0.0)

    def test_empty_batch(self, tet_small, eam_small):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        batch = ev.evaluate_batch(
            np.zeros((0, tet_small.n_all), dtype=np.int64)
        )
        assert len(batch) == 0
        assert batch.delta.shape == (0, 8)
        assert batch.rows() == []

    def test_rejects_non_vacancy_centre(self, tet_small, eam_small):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _random_vets(ev, 2, seed=2)
        vets[1, 0] = 0  # an atom where the vacancy must be
        with pytest.raises(ValueError, match="centre"):
            ev.evaluate_batch(vets)

    def test_rejects_bad_shape(self, tet_small, eam_small):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        with pytest.raises(ValueError, match="shape"):
            ev.evaluate_batch(np.zeros((2, 3), dtype=np.int64))


class TestRatesBatch:
    def test_bitwise_equal_to_scalar_rows(self, tet_small, eam_small, rate_model):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _lattice_vets(_make_lattice(33), tet_small)
        batch = ev.evaluate_batch(vets)
        rates = rate_model.rates_batch(batch)
        assert rates.shape == (len(batch), 8)
        for b in range(len(batch)):
            assert np.array_equal(rates[b], rate_model.rates(batch.row(b)))

    def test_migration_energies_batch(self, tet_small, eam_small, rate_model):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _random_vets(ev, 4, seed=8)
        batch = ev.evaluate_batch(vets)
        ea = rate_model.migration_energies_batch(batch)
        for b in range(4):
            assert np.array_equal(
                ea[b], rate_model.migration_energies(batch.row(b))
            )

    def test_invalid_rows_rate_zero(self, tet_small, eam_small, rate_model):
        ev = VacancySystemEvaluator(tet_small, eam_small)
        vets = _random_vets(ev, 2, seed=4, vacancy_neighbors=True)
        rates = rate_model.rates_batch(ev.evaluate_batch(vets))
        assert np.all(rates == 0.0)


@pytest.fixture()
def rate_model():
    from repro.core.rates import RateModel

    return RateModel(600.0)


class TestEngineBatching:
    def test_batched_and_scalar_trajectories_identical(self, tet_small, eam_small):
        """The default batched miss path must not change fixed-seed physics."""
        streams = []
        for batching in ("batched", "scalar"):
            lattice = _make_lattice(7)
            engine = TensorKMCEngine(
                lattice, eam_small, tet_small,
                rng=np.random.default_rng(42), batching=batching,
            )
            events = [engine.step() for _ in range(20)]
            streams.append(
                ([(e.from_site, e.to_site, e.dt) for e in events],
                 lattice.occupancy.copy())
            )
        assert streams[0][0] == streams[1][0]
        assert np.array_equal(streams[0][1], streams[1][1])

    def test_auto_batches_eam_and_counts(self, tet_small, eam_small):
        lattice = _make_lattice(7)
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(0)
        )
        assert engine.batching == "batched"
        engine.run(n_steps=15)
        summary = engine.summary()
        assert summary["rate_batches"] >= 1
        assert summary["batched_rows"] == summary["cache_misses"]
        assert summary["max_batch_size"] >= summary["mean_batch_size"] > 0.0

    def test_auto_batches_nnp(self, tet_small, nnp_small):
        """The tiled kernel makes the NNP row-invariant -> auto batches it."""
        assert nnp_small.batch_row_invariant is True
        lattice = _make_lattice(7)
        engine = TensorKMCEngine(
            lattice, nnp_small, tet_small, rng=np.random.default_rng(0)
        )
        assert engine.batching == "batched"
        engine.run(n_steps=5)
        assert engine.summary()["rate_batches"] >= 1

    def test_nnp_batched_and_scalar_trajectories_identical(
        self, tet_small, nnp_small
    ):
        """Batched vs forced-scalar NNP campaigns agree event for event."""
        streams = []
        for batching in ("batched", "scalar"):
            lattice = _make_lattice(7)
            engine = TensorKMCEngine(
                lattice, nnp_small, tet_small,
                rng=np.random.default_rng(42), batching=batching,
            )
            events = [engine.step() for _ in range(10)]
            streams.append(
                ([(e.from_site, e.to_site, e.dt) for e in events],
                 lattice.occupancy.copy())
            )
        assert streams[0][0] == streams[1][0]
        assert np.array_equal(streams[0][1], streams[1][1])

    def test_uncached_baseline_batches_whole_population(self, tet_small, eam_small):
        """OpenKMC rebuilds everything per step -> batch == population."""
        lattice = _make_lattice(7)
        engine = OpenKMCEngine(
            lattice, eam_small, tet_small,
            rng=np.random.default_rng(0), maintain_atom_arrays=False,
        )
        engine.run(n_steps=3)
        summary = engine.summary()
        assert summary["max_batch_size"] == engine.kernel.cache.n_live

    def test_unknown_mode_rejected(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="batching"):
            TensorKMCEngine(
                _make_lattice(7), eam_small, tet_small, batching="vectorised"
            )


class TestParallelBatching:
    def test_sublattice_counters_and_summary(self, tet_small, eam_small):
        lattice = _make_lattice(11, shape=(16, 8, 8), vac=0.01)
        sim = SublatticeKMC(
            lattice, eam_small, tet_small,
            n_ranks=2, temperature=1200.0, t_stop=2e-7, seed=3,
        )
        stats = sim.run(4)
        summary = sim.summary()
        assert summary["rate_batches"] >= 1
        assert summary["batched_rows"] >= summary["rate_batches"]
        assert summary["max_batch_size"] >= summary["mean_batch_size"] > 0.0
        assert sum(s.rate_batches for s in stats) == summary["rate_batches"]
        assert sum(s.batched_rows for s in stats) == summary["batched_rows"]


class TestFusedNNPCounts:
    def test_energies_from_counts_fused_matches_plain(self, tet_small, nnp_small):
        from repro.sunway import SW26010_PRO, CostLedger

        rng = np.random.default_rng(6)
        types = rng.integers(0, 3, size=64)
        counts = rng.integers(
            0, 5, size=(64, tet_small.n_shells, 2)
        ).astype(np.float32)
        ledger = CostLedger(SW26010_PRO)
        fused = nnp_small.energies_from_counts_fused(types, counts, ledger=ledger)
        plain = nnp_small.energies_from_counts(types, counts)
        # One deterministic tiled kernel behind both entry points: bit-exact.
        assert np.array_equal(fused, plain)
        assert ledger.simd_flops > 0 and ledger.dma_bytes > 0
        # Vacancy centres stay exactly zero through the fused path too.
        assert np.all(fused[types == nnp_small.vacancy_code] == 0.0)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestFuzzBatchedAgreement:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=12),
        vac_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_random_batches_match_scalar(self, tet_small, eam_small, seed, n, vac_frac):
        """Random VET batches (incl. vacancy-rich shells) agree bitwise."""
        ev = VacancySystemEvaluator(tet_small, eam_small)
        rng = np.random.default_rng(seed)
        vets = rng.integers(
            0, ev.n_elements + 1, size=(n, tet_small.n_all)
        )
        # Sprinkle extra vacancies so all-vacancy shells actually occur.
        extra = rng.random(vets.shape) < vac_frac
        vets[extra] = ev.vacancy_code
        vets[:, 0] = ev.vacancy_code
        batch = ev.evaluate_batch(vets)
        for b in range(n):
            scalar = ev.evaluate(vets[b])
            row = batch.row(b)
            assert row.initial == scalar.initial
            assert np.array_equal(row.delta, scalar.delta)
            assert np.array_equal(row.valid, scalar.valid)
            assert np.array_equal(row.migrating_species, scalar.migrating_species)
