"""OKMC comparator model: conservation, kinetics, physics."""

import numpy as np
import pytest

from repro.constants import EA0_FE, KB_EV
from repro.okmc import DefectObject, OKMCModel, OKMCParameters


@pytest.fixture()
def params():
    return OKMCParameters(temperature=800.0)


def _model(params, n=30, seed=0, box_cells=16):
    return OKMCModel.random_monovacancies(
        n, np.array([box_cells * 2.87] * 3), params, np.random.default_rng(seed)
    )


class TestParameters:
    def test_monovacancy_rate_matches_akmc_barrier(self, params):
        expected = params.attempt_frequency * np.exp(
            -EA0_FE / (KB_EV * 800.0)
        )
        assert params.migration_rate(1) == pytest.approx(expected)

    def test_larger_clusters_are_slower(self, params):
        assert params.migration_rate(8) < params.migration_rate(2) < params.migration_rate(1)

    def test_monovacancy_cannot_emit(self, params):
        assert params.emission_rate(1) == 0.0
        assert params.binding_energy(1) == 0.0

    def test_binding_grows_with_size(self, params):
        """Capillary law: bigger clusters bind vacancies more strongly."""
        assert params.binding_energy(20) > params.binding_energy(3) > 0.0

    def test_emission_slower_than_migration(self, params):
        # emission carries the extra binding barrier
        assert params.emission_rate(5) < params.migration_rate(1)

    def test_capture_radius_grows_as_cube_root(self, params):
        assert params.capture_radius(8) == pytest.approx(
            2.0 * params.capture_radius(1)
        )


class TestConservation:
    def test_vacancy_count_conserved(self, params):
        model = _model(params, n=30, seed=1)
        model.run(2000)
        assert model.total_vacancies == 30

    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_conserved_across_seeds(self, params, seed):
        model = _model(params, n=20, seed=seed)
        model.run(800)
        assert model.total_vacancies == 20

    def test_positions_stay_in_box(self, params):
        model = _model(params, n=15, seed=5)
        model.run(1000)
        for obj in model.objects:
            assert np.all(obj.position >= 0.0)
            assert np.all(obj.position < model.box)


class TestKinetics:
    def test_clustering_happens(self, params):
        model = _model(params, n=40, seed=0)
        model.run(3000)
        assert model.n_coalescences > 0
        assert model.cluster_sizes()[0] >= 4
        assert len(model.objects) < 40

    def test_time_advances(self, params):
        model = _model(params, n=10, seed=6)
        model.run(100)
        assert model.time > 0.0
        assert model.step_count == 100

    def test_determinism(self, params):
        sizes = []
        for _ in range(2):
            model = _model(params, n=25, seed=7)
            model.run(1500)
            sizes.append(model.cluster_sizes().tolist())
        assert sizes[0] == sizes[1]

    def test_frozen_when_empty(self, params):
        model = OKMCModel(
            box=np.array([10.0, 10.0, 10.0]), objects=[], params=params,
            rng=np.random.default_rng(0),
        )
        assert model.step() is None

    def test_single_object_diffusion_rate(self, params):
        """A lone monovacancy's event rate equals its migration rate."""
        model = OKMCModel(
            box=np.array([100.0] * 3),
            objects=[DefectObject(np.array([50.0] * 3), 1)],
            params=params,
            rng=np.random.default_rng(8),
        )
        n = 2000
        model.run(n)
        expected_time = n / params.migration_rate(1)
        assert model.time == pytest.approx(expected_time, rel=0.1)

    def test_history_recording(self, params):
        model = _model(params, n=10, seed=9)
        model.run(500, record_every=100)
        assert len(model.history) == 5
        assert all("max_size" in h for h in model.history)

    def test_emission_shrinks_and_spawns(self, params):
        """A large hot cluster emits monovacancies that stay free briefly."""
        hot = OKMCParameters(temperature=1400.0)
        model = OKMCModel(
            box=np.array([200.0] * 3),
            objects=[DefectObject(np.array([100.0] * 3), 30)],
            params=hot,
            rng=np.random.default_rng(10),
        )
        model.run(400)
        assert model.n_emissions > 0
        assert model.total_vacancies == 30


class TestCrossMethod:
    def test_okmc_and_akmc_agree_on_clustering_trend(
        self, tet_small, eam_small
    ):
        """Both model classes show vacancy aggregation on the same workload."""
        from repro.analysis import cluster_sizes, find_clusters
        from repro.constants import VACANCY
        from repro.core import TensorKMCEngine
        from repro.lattice import LatticeState

        # AKMC: 40 vacancies in a 16^3 box.
        lattice = LatticeState((16, 16, 16))
        rng = np.random.default_rng(0)
        ids = rng.choice(lattice.n_sites, 40, replace=False)
        lattice.occupancy[ids] = VACANCY
        akmc = TensorKMCEngine(
            lattice, eam_small, tet_small, temperature=800.0,
            rng=np.random.default_rng(9),
        )
        akmc.run(n_steps=3000)
        akmc_sizes = cluster_sizes(find_clusters(lattice, species=VACANCY))

        # OKMC: same box, same vacancy count and temperature.
        okmc = OKMCModel.random_monovacancies(
            40, np.array([16 * 2.87] * 3),
            OKMCParameters(temperature=800.0), np.random.default_rng(1),
        )
        okmc.run(3000)
        okmc_sizes = okmc.cluster_sizes()

        # Same qualitative outcome: aggregation into a few clusters.
        assert akmc_sizes[0] >= 4 and okmc_sizes[0] >= 4
        assert len(akmc_sizes) < 40 and len(okmc_sizes) < 40


class TestEKMC:
    """The event-KMC family (well-mixed encounter events)."""

    def _ekmc(self, params, n=40, seed=0, box_cells=16):
        from repro.okmc import EKMCModel

        return EKMCModel(
            sizes=[1] * n,
            volume=(box_cells * 2.87) ** 3,
            params=params,
            rng=np.random.default_rng(seed),
        )

    def test_vacancy_conservation(self, params):
        model = self._ekmc(params, n=30, seed=1)
        model.run(400)
        assert model.total_vacancies == 30

    def test_clustering_happens(self, params):
        model = self._ekmc(params, n=40, seed=2)
        model.run(300)
        assert model.n_encounters > 0
        assert model.cluster_sizes()[0] >= 3
        assert len(model.sizes) < 40

    def test_time_advances_and_deterministic(self, params):
        results = []
        for _ in range(2):
            model = self._ekmc(params, n=20, seed=3)
            model.run(150)
            results.append((model.time, model.cluster_sizes().tolist()))
        assert results[0] == results[1]
        assert results[0][0] > 0.0

    def test_encounter_rate_scaling(self, params):
        """Smoluchowski: doubling the volume halves the encounter rate."""
        small = self._ekmc(params, box_cells=10)
        big = self._ekmc(params, box_cells=10)
        big.volume = 2.0 * small.volume
        assert big.encounter_rate(1, 1) == pytest.approx(
            small.encounter_rate(1, 1) / 2.0
        )

    def test_diffusivity_matches_random_walk(self, params):
        model = self._ekmc(params)
        expected = params.migration_rate(1) * params.jump_length**2 / 6.0
        assert model.diffusivity(1) == pytest.approx(expected)

    def test_empty_model_frozen(self, params):
        model = self._ekmc(params, n=0)
        assert model.step() is None

    def test_single_unclusterable_monovacancy(self, params):
        model = self._ekmc(params, n=1)
        # one monovacancy: no pair, no emission -> frozen
        assert model.step() is None

    def test_three_model_classes_agree_on_trend(self, params):
        """AKMC (tested above), OKMC, EKMC all aggregate the workload."""
        okmc = _model(params, n=40, seed=0)
        okmc.run(2000)
        ekmc = self._ekmc(params, n=40, seed=0)
        ekmc.run(300)
        assert okmc.cluster_sizes()[0] >= 4
        assert ekmc.cluster_sizes()[0] >= 4
