"""Serial <-> parallel agreement and trajectory bit-identity over the kernel.

The golden checksum below was captured from the seed commit (before the
engines were rebased on the shared event kernel): with a fixed seed the
refactored :class:`TensorKMCEngine` must reproduce the exact same event
stream bit for bit (the Fig. 8 validation invariant).
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np
import pytest

from repro.core.engine import TensorKMCEngine
from repro.lattice.occupancy import LatticeState
from repro.parallel.engine import SublatticeKMC

# sha256 over (slot, from_site, to_site, direction, dt, total_rate) of 120
# events, and over the final occupancy array, from the seed commit.
GOLDEN_EVENT_SHA = "d10f21757b8905aa11e85114be90429805f67edd791f84b4f783265b298cb053"
GOLDEN_OCCUPANCY_SHA = (
    "64a7601897d18606357d2169789fac23bb3a3d724f749b9a3ed4983e6778058e"
)
GOLDEN_FINAL_TIME = 4.2037441855097514e-09


def test_serial_trajectory_bit_identical_to_seed(tet_small, eam_small):
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(
        np.random.default_rng(1234), cu_fraction=0.05, vacancy_fraction=0.003
    )
    engine = TensorKMCEngine(
        lattice, eam_small, tet_small,
        temperature=900.0, rng=np.random.default_rng(4321),
    )
    digest = hashlib.sha256()
    for _ in range(120):
        ev = engine.step()
        digest.update(
            struct.pack(
                "<qqqqdd",
                ev.slot, ev.from_site, ev.to_site, ev.direction,
                ev.dt, ev.total_rate,
            )
        )
    assert digest.hexdigest() == GOLDEN_EVENT_SHA
    assert hashlib.sha256(lattice.occupancy.tobytes()).hexdigest() == (
        GOLDEN_OCCUPANCY_SHA
    )
    assert engine.time == GOLDEN_FINAL_TIME


@pytest.fixture()
def one_rank_setup(tet_small, eam_small):
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(
        np.random.default_rng(5150), cu_fraction=0.05, vacancy_fraction=0.004
    )
    sim = SublatticeKMC(
        lattice, eam_small, tet_small,
        n_ranks=1, temperature=1200.0, t_stop=5e-7, seed=99,
    )
    return lattice, sim


def test_one_rank_initial_propensity_matches_serial(
    one_rank_setup, tet_small, eam_small
):
    lattice, sim = one_rank_setup
    # The driver scattered copies into the rank windows; the global lattice
    # is untouched, so the serial engine can read it directly.
    serial = TensorKMCEngine(
        lattice, eam_small, tet_small, temperature=1200.0,
        rng=np.random.default_rng(0),
    )
    rank = sim.ranks[0]
    rank.kernel.refresh()
    # One rank owns the whole box: same vacancies, same rates, same total.
    assert rank.kernel.total == pytest.approx(
        serial.total_propensity(), rel=1e-12
    )
    # And slot-for-slot: np.nonzero scan order == ascending flat site order.
    serial_totals = [
        serial.cache.get(s).total_rate for s in range(serial.cache.n_slots)
    ]
    rank_totals = [
        rank.kernel.cache.get(s).total_rate
        for s in range(rank.kernel.cache.n_slots)
    ]
    assert rank_totals == pytest.approx(serial_totals, rel=1e-12)


def test_one_rank_sublattice_invariants(one_rank_setup):
    lattice, sim = one_rank_setup
    n_vac_before = int((lattice.occupancy == lattice.vacancy_code).sum())
    sim.run(16)
    assert sim.total_events > 0
    assert sim.total_anomalies == 0
    assert sim.proximity_violations == 0
    assert sim.check_ghost_consistency()
    gathered = sim.gather_global()
    assert int((gathered.occupancy == lattice.vacancy_code).sum()) == n_vac_before
    # The kernel registry tracks exactly the surviving vacancies.
    rank = sim.ranks[0]
    assert rank.kernel.cache.n_live == n_vac_before
    summary = sim.summary()
    assert summary["selections"] >= sim.total_events
    assert summary["cache_hits"] + summary["cache_misses"] > 0


def test_cycle_stats_carry_kernel_counters(one_rank_setup):
    _, sim = one_rank_setup
    stats = sim.run(8)
    assert sum(c.cache_misses for c in stats) > 0
    assert sum(c.selections for c in stats) >= sim.total_events
    assert sum(c.selection_depth for c in stats) >= sum(
        c.selections for c in stats
    )
    # Counters are per-cycle deltas, not running totals.
    totals = sim._kernel_counters()
    assert sum(c.cache_misses for c in stats) == totals["cache_misses"]
