"""Lint: keep the hot path behind the array-backend shim.

The backend refactor threads an ``ArrayBackend`` handle (``repro.core.backend``)
through every hot-path layer; new code in those layers must take ``xp``
rather than reaching for ``import numpy`` directly, or it silently pins the
torch path back to host arrays.  This script fails when a module under
``src/repro/{operators,nnp,core}`` imports numpy and is *not* on the frozen
exemption list below.

The exemption list is exactly the set of importers at the time the shim
landed — modules whose numpy use is deliberate (the shim itself, the
NumPy-verbatim golden branches, training/backprop, host-side bookkeeping).
It is frozen on purpose: removing an entry as a module is weaned off numpy
is encouraged, adding one requires editing this file and explaining the new
host-resident dependency in review.

Usage::

    python tools/check_backend_imports.py

Exit status 0 when clean, 1 with a per-file report otherwise.  Stdlib only.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

#: The hot-path packages the shim covers.
HOT_PATH_DIRS = ("operators", "nnp", "core")

#: Modules allowed to import numpy directly, frozen at shim-landing time.
#: Each entry is repo-relative.  Remove entries freely; additions need a
#: written justification here.
EXEMPT = frozenset(
    {
        # The shim itself and its NumPy reference backend.
        "src/repro/core/backend.py",
        # Hot-path modules keeping a verbatim-NumPy golden branch and/or
        # host-side bookkeeping (masks, RNG, serialisation staging).
        "src/repro/core/engine.py",
        "src/repro/core/kernel.py",
        "src/repro/core/propensity.py",
        "src/repro/core/rates.py",
        "src/repro/core/tet.py",
        "src/repro/core/vacancy_cache.py",
        "src/repro/core/vacancy_system.py",
        # The delta rebuilder splices cache-resident snapshot rows
        # (VacancyCache stores VET/row-energy snapshots as host arrays);
        # its numpy use sits on the host side of the to_numpy boundary.
        "src/repro/core/delta.py",
        # The row-energy cache stages hits/misses as host arrays around a
        # Python-float store (bitwise-stable keys and values regardless of
        # backend); like delta.py it lives on the host side of to_numpy.
        "src/repro/core/rowcache.py",
        "src/repro/nnp/model.py",
        "src/repro/nnp/network.py",
        "src/repro/operators/bigfusion.py",
        "src/repro/operators/fused.py",
        "src/repro/operators/tilegemm.py",
        # NumPy-resident by design (training, data prep, cost models).
        "src/repro/nnp/dataset.py",
        "src/repro/nnp/descriptors.py",
        "src/repro/nnp/metrics.py",
        "src/repro/nnp/training.py",
        "src/repro/operators/conv.py",
        "src/repro/operators/feature_op.py",
        "src/repro/operators/variants.py",
    }
)


def imports_numpy(path: Path) -> bool:
    """True when the module imports numpy at any level (ast-based, so
    comments and docstrings never false-positive)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.split(".")[0] == "numpy" for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "numpy":
                return True
    return False


def main() -> int:
    offenders = []
    for sub in HOT_PATH_DIRS:
        for path in sorted((SRC / sub).rglob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            if rel in EXEMPT:
                continue
            if imports_numpy(path):
                offenders.append(rel)
    stale = sorted(
        rel for rel in EXEMPT if not (REPO_ROOT / rel).is_file()
    )
    for rel in stale:
        print(f"backend-imports: note: exempt file no longer exists: {rel}")
    if offenders:
        print("backend-imports: new direct numpy import in the hot path:")
        for rel in offenders:
            print(f"  {rel}")
        print(
            "backend-imports: thread the ArrayBackend handle (xp) instead, "
            "or add an explained exemption in tools/check_backend_imports.py"
        )
        return 1
    print(
        f"backend-imports: OK ({len(EXEMPT)} exemptions, "
        f"{len(stale)} stale)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
