#!/usr/bin/env python3
"""Cu precipitation in a reactor-pressure-vessel alloy (paper Sec. 5 / Fig. 14).

Thermally ages an Fe - 1.34 at.% Cu alloy with dilute vacancies and tracks
the precipitate population: isolated Cu count, cluster-size histogram, the
largest cluster, and the number density the paper stabilises near
1.71e26 / m^3.  Snapshots are written so the evolution can be resumed or
post-processed.

Run:  python examples/cu_precipitation.py  [--steps 8000]
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro import TensorKMCEngine, TripleEncoding
from repro.analysis import analyse_precipitation, run_with_snapshots
from repro.constants import VACANCY
from repro.io import load_lattice, save_lattice
from repro.lattice import LatticeState
from repro.potentials import EAMPotential


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=8000)
    parser.add_argument("--box", type=int, default=14, help="cells per axis")
    parser.add_argument("--temperature", type=float, default=600.0)
    args = parser.parse_args()

    rng = np.random.default_rng(12)
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)

    lattice = LatticeState((args.box,) * 3)
    lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=0.0)
    vac_sites = rng.choice(lattice.n_sites, 6, replace=False)
    lattice.occupancy[vac_sites] = VACANCY

    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=args.temperature,
        rng=np.random.default_rng(1),
    )

    probe = lambda t: analyse_precipitation(lattice, t)  # noqa: E731
    engine.step()  # establish a time scale for the snapshot stride
    stride = engine.time * args.steps / 8
    recorder = run_with_snapshots(
        engine, probe, stride=stride, n_steps=args.steps - 1
    )

    print(f"{'time (s)':>12}  {'isolated':>8}  {'clusters':>8}  {'max':>4}  "
          f"{'density (1/m^3)':>16}")
    for t, stats in zip(recorder.times, recorder.values):
        print(
            f"{t:12.3e}  {stats.isolated:8d}  {stats.n_clusters:8d}  "
            f"{stats.max_size:4d}  {stats.number_density:16.3e}"
        )

    final = recorder.values[-1]
    print("\ncluster-size histogram:", dict(sorted(final.histogram.items())))
    print(f"paper reference: max size ~40, density ~1.71e26/m^3 "
          f"(250M atoms, 1 s); ours is the scaled-box equivalent")

    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as fh:
        save_lattice(fh.name, lattice, time=engine.time)
        restored, t = load_lattice(fh.name)
        print(f"snapshot round-trip OK ({restored.n_sites} sites at t={t:.2e} s)"
              f" -> {fh.name}")


if __name__ == "__main__":
    main()
