#!/usr/bin/env python3
"""Multicomponent alloys: Fe-Cu-Ni thermal aging.

The paper motivates NNP-driven AKMC for *chemically complex* alloys (its
intro studies Cu, Ni, Mn and Si solutes in RPV steels).  This example runs
the whole stack on a ternary system — element codes Fe=0, Cu=1, Ni=2,
vacancy=3 — and tracks both solutes' clustering.  The ternary EAM preset
makes Ni co-segregate with Cu, the qualitative phenomenology of
Ni-decorated Cu precipitates.

Run:  python examples/ternary_alloy.py  [--steps 6000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import TensorKMCEngine, TripleEncoding
from repro.analysis import cluster_sizes, find_clusters, warren_cowley
from repro.constants import CU
from repro.lattice import LatticeState
from repro.potentials import EAMParameters, EAMPotential

NI = 2
VACANCY3 = 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=6000)
    parser.add_argument("--box", type=int, default=12)
    parser.add_argument("--temperature", type=float, default=600.0)
    args = parser.parse_args()

    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances, EAMParameters.fe_cu_ni())
    print(f"ternary potential: {potential.n_elements} elements, "
          f"vacancy code {potential.vacancy_code}")

    lattice = LatticeState((args.box,) * 3, vacancy_code=VACANCY3)
    rng = np.random.default_rng(21)
    lattice.randomize_multicomponent(
        rng, {CU: 0.03, NI: 0.02}, vacancy_fraction=0.0
    )
    ids = rng.choice(lattice.n_sites, 6, replace=False)
    lattice.occupancy[ids] = VACANCY3
    counts = lattice.species_counts()
    print(f"box: {counts[0]} Fe, {counts[1]} Cu, {counts[2]} Ni, "
          f"{counts[3]} vacancies")

    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=args.temperature,
        rng=np.random.default_rng(2),
        ea0=(0.65, 0.56, 0.60),  # Fe, Cu, Ni reference barriers (eV)
    )

    def report(label):
        cu_alpha = warren_cowley(lattice, rcut=2.87, species=CU).get(0, 0.0)
        ni_alpha = warren_cowley(lattice, rcut=2.87, species=NI).get(0, 0.0)
        cu_sizes = cluster_sizes(find_clusters(lattice, species=CU))
        print(f"{label}: alpha_1NN(Cu) = {cu_alpha:+.4f}, "
              f"alpha_1NN(Ni) = {ni_alpha:+.4f}, "
              f"largest Cu cluster = {cu_sizes[0] if cu_sizes.size else 0}")

    report("before aging")
    for quarter in range(4):
        engine.run(n_steps=args.steps // 4)
        report(f"after {engine.step_count:5d} events")

    final = lattice.species_counts()
    assert np.array_equal(final, counts), "species not conserved!"
    print(f"\nspecies conserved; simulated time {engine.time:.2e} s")


if __name__ == "__main__":
    main()
