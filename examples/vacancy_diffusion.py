#!/usr/bin/env python3
"""Vacancy diffusion: measured MSD against the analytic Arrhenius law.

A physical end-to-end validation of the whole KMC stack (paper Sec. 2.1's
rate model): in pure bcc Fe a lone vacancy performs an unbiased 1NN random
walk whose diffusivity is known in closed form.  This example measures D(T)
over a temperature sweep by ensemble-averaged mean squared displacement and
prints it next to the exact value, then demonstrates vacancy *clustering*
(void nucleation) when many vacancies interact — the regime where free
diffusion breaks down.

Run:  python examples/vacancy_diffusion.py
"""

from __future__ import annotations

import numpy as np

from repro import TensorKMCEngine, TripleEncoding
from repro.analysis import (
    analytic_vacancy_diffusivity,
    cluster_sizes,
    find_clusters,
    measure_vacancy_diffusivity,
)
from repro.constants import EA0_FE, VACANCY
from repro.lattice import LatticeState
from repro.potentials import EAMPotential


def main() -> None:
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)

    print("single-vacancy tracer diffusion in pure Fe "
          "(8 walkers x 500 hops per T)")
    print(f"{'T (K)':>7}  {'D measured (A^2/s)':>20}  {'D analytic':>14}  {'ratio':>6}")
    for temperature in (700.0, 900.0, 1100.0):
        measured = []
        for seed in range(8):
            lattice = LatticeState((8, 8, 8))
            lattice.occupancy[lattice.site_id(0, 4, 4, 4)] = VACANCY
            engine = TensorKMCEngine(
                lattice, potential, tet, temperature=temperature,
                rng=np.random.default_rng(seed),
            )
            measured.append(
                measure_vacancy_diffusivity(engine, n_steps=500)["D"]
            )
        d_meas = float(np.mean(measured))
        d_exact = analytic_vacancy_diffusivity(temperature, lattice.a, EA0_FE)
        print(f"{temperature:7.0f}  {d_meas:20.4e}  {d_exact:14.4e}  "
              f"{d_meas / d_exact:6.2f}")

    print("\nmany interacting vacancies: void nucleation (paper Fig. 14)")
    lattice = LatticeState((16, 16, 16))
    rng = np.random.default_rng(0)
    ids = rng.choice(lattice.n_sites, 40, replace=False)
    lattice.occupancy[ids] = VACANCY
    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=800.0,
        rng=np.random.default_rng(9),
    )
    for checkpoint in (1000, 4000, 8000):
        engine.run(n_steps=checkpoint - engine.step_count)
        sizes = cluster_sizes(find_clusters(lattice, species=VACANCY))
        print(f"  after {engine.step_count:5d} events: "
              f"{len(sizes)} vacancy clusters, sizes {sizes.tolist()}")


if __name__ == "__main__":
    main()
