#!/usr/bin/env python3
"""Parallel AKMC with the synchronous sublattice algorithm (paper Sec. 2.2).

Decomposes a periodic alloy box over simulated MPI ranks, runs sublattice
cycles with ghost synchronisation at t_stop intervals, verifies the
conflict-freedom invariants, and prints the communication statistics the
scaling model (Figs. 12-13) is calibrated from.

Run:  python examples/parallel_sublattice.py  [--ranks 4] [--cycles 32]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import TripleEncoding
from repro.lattice import LatticeState
from repro.parallel import (
    ScalingParameters,
    SublatticeKMC,
    parallel_efficiency,
    strong_scaling,
)
from repro.potentials import EAMPotential


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=32)
    parser.add_argument("--box", type=int, default=16)
    args = parser.parse_args()

    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)

    lattice = LatticeState((args.box,) * 3)
    lattice.randomize_alloy(
        np.random.default_rng(3), cu_fraction=0.0134, vacancy_fraction=3e-3
    )
    before = lattice.species_counts().copy()

    sim = SublatticeKMC(
        lattice, potential, tet, n_ranks=args.ranks, temperature=900.0,
        t_stop=2e-10, seed=5,
    )
    print(f"decomposition: grid {sim.decomposition.grid}, "
          f"ghost {tet.ghost_cells} cells")
    for rank in sim.ranks:
        print(f"  rank {rank.rank}: box {rank.window.box.lo} -> "
              f"{rank.window.box.hi}, {len(rank.vacancies)} vacancies")

    sim.run(args.cycles)

    print(f"\nafter {args.cycles} cycles (t = {sim.time:.2e} s):")
    print(f"  events executed: {sim.total_events}")
    print(f"  rejected boundary events: {sum(c.rejected for c in sim.cycles)}")
    print(f"  ghost messages: {sim.world.stats.messages_sent}, "
          f"bytes: {sim.world.stats.bytes_sent}")

    gathered = sim.gather_global()
    assert np.array_equal(gathered.species_counts(), before), "atoms lost!"
    assert sim.check_ghost_consistency(), "ghost regions diverged!"
    print("  invariants: species conserved OK, ghost regions consistent OK")

    # Extrapolate to the paper's strong-scaling configuration (Fig. 12).
    events = max(sim.total_events, 1)
    compute_per_event = sum(c.compute_seconds for c in sim.cycles) / events
    params = ScalingParameters(
        compute_seconds_per_event=2.0e-4,  # modeled CG event cost (Fig. 11)
        events_per_atom_second=750.0,  # 573 K Fe-Cu workload density
        bytes_per_boundary_cell=0.05,
    )
    points = strong_scaling(params, 1.92e12, [12000, 96000, 384000])
    eff = parallel_efficiency(points)
    print(f"\nprotocol-model extrapolation (python event cost measured: "
          f"{compute_per_event * 1e3:.2f} ms):")
    for p, e in zip(points, eff):
        print(f"  {p.n_cores:>10,} cores: cycle {p.cycle_time * 1e3:7.2f} ms, "
              f"efficiency {e * 100:5.1f}%")


if __name__ == "__main__":
    main()
