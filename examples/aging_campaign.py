#!/usr/bin/env python3
"""Aging campaign: precipitation kinetics across a temperature sweep.

The kind of study a downstream user runs with this library: the same
Fe - 1.34 at.% Cu alloy is thermally aged at several temperatures for a fixed
*simulated* duration, with checkpoints and XYZ exports per condition, and the
campaign summary reports how temperature accelerates the microstructural
evolution (an Arrhenius-like trend in the per-time event throughput).

Run:  python examples/aging_campaign.py  [--steps 3000]
"""

from __future__ import annotations

import argparse
import os
import tempfile

import numpy as np

from repro import TensorKMCEngine, TripleEncoding
from repro.analysis import analyse_precipitation, warren_cowley
from repro.constants import VACANCY
from repro.io import save_checkpoint, write_xyz
from repro.lattice import LatticeState
from repro.potentials import EAMPotential

TEMPERATURES = (500.0, 600.0, 700.0)


def age_at(temperature: float, steps: int, outdir: str):
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState((12, 12, 12))
    rng = np.random.default_rng(12)
    lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=0.0)
    ids = rng.choice(lattice.n_sites, 6, replace=False)
    lattice.occupancy[ids] = VACANCY

    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=temperature,
        rng=np.random.default_rng(1), evaluation="full",
    )
    initial_propensity = engine.total_propensity()
    engine.run(n_steps=steps)

    stats = analyse_precipitation(lattice, engine.time)
    alpha = warren_cowley(lattice, rcut=2.87).get(0, 0.0)

    tag = f"T{temperature:.0f}"
    save_checkpoint(os.path.join(outdir, f"{tag}.npz"), engine)
    with open(os.path.join(outdir, f"{tag}.xyz"), "w") as fh:
        write_xyz(fh, lattice, time=engine.time, species_filter=[1, VACANCY])

    return {
        "temperature": temperature,
        "sim_time": engine.time,
        "events_per_sim_second": steps / engine.time,
        "initial_propensity": initial_propensity,
        "isolated": stats.isolated,
        "max_cluster": stats.max_size,
        "alpha_1nn": alpha,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=3000)
    parser.add_argument("--outdir", type=str, default=None)
    args = parser.parse_args()
    outdir = args.outdir or tempfile.mkdtemp(prefix="aging_campaign_")
    os.makedirs(outdir, exist_ok=True)

    print(f"{'T (K)':>6}  {'sim time (s)':>12}  {'events/s(sim)':>14}  "
          f"{'isolated':>8}  {'max':>4}  {'alpha_1NN':>10}")
    results = [age_at(t, args.steps, outdir) for t in TEMPERATURES]
    for r in results:
        print(f"{r['temperature']:6.0f}  {r['sim_time']:12.3e}  "
              f"{r['events_per_sim_second']:14.3e}  {r['isolated']:8d}  "
              f"{r['max_cluster']:4d}  {r['alpha_1nn']:+10.4f}")

    # Arrhenius check on the *same* starting configuration: the total
    # propensity grows strictly with temperature.  (The time-averaged event
    # rate over a trajectory can be non-monotonic once vacancies fall into
    # traps — deep states dominate the clock — which is itself a useful
    # observation about aged microstructures.)
    props = [r["initial_propensity"] for r in results]
    assert props[0] < props[1] < props[2], "propensity must grow with T"
    print(f"\ninitial-propensity ratio {TEMPERATURES[-1]:.0f}K / "
          f"{TEMPERATURES[0]:.0f}K: {props[-1] / props[0]:.1f}x "
          f"(Arrhenius acceleration)")
    print(f"checkpoints and XYZ snapshots in {outdir}")


if __name__ == "__main__":
    main()
