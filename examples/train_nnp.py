#!/usr/bin/env python3
"""Train a neural network potential from scratch and validate it (Fig. 7).

Reproduces the paper's Sec. 4.1.1 pipeline end-to-end:

1. generate Fe-Cu training structures of 60-64 atoms (labelled by the EAM
   oracle — the FHI-aims substitution described in DESIGN.md),
2. train the (64, 128, 128, 128, 64, 1) atomistic network with Adam
   (energy pre-training plus double-backprop force fine-tuning),
3. report energy/force parity on the held-out split,
4. save the model and reuse it inside a KMC engine.

Run:  python examples/train_nnp.py  [--fast]
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro import TensorKMCEngine, TripleEncoding
from repro.constants import PAPER_CHANNELS
from repro.lattice import LatticeState
from repro.nnp import (
    ElementNetworks,
    NNPotential,
    NNPTrainer,
    generate_structures,
    parity_report,
    train_test_split,
)
from repro.potentials import EAMPotential, FeatureTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="small dataset / short training for a quick smoke run",
    )
    args = parser.parse_args()
    n_structures = 60 if args.fast else 240
    n_train = 45 if args.fast else 180
    n_epochs = 40 if args.fast else 150

    rng = np.random.default_rng(7)
    tet = TripleEncoding(rcut=6.5)
    oracle = EAMPotential(tet.shell_distances)

    print(f"generating {n_structures} structures of 60-64 atoms ...")
    structures = generate_structures(oracle, rng, n_structures=n_structures)
    train, test = train_test_split(structures, rng, n_train=n_train)

    table = FeatureTable(tet.shell_distances)
    networks = ElementNetworks(PAPER_CHANNELS, rng)
    model = NNPotential(table, networks, rcut=6.5)
    print(f"network: channels {PAPER_CHANNELS}, {networks.n_parameters} parameters")

    trainer = NNPTrainer(model, train)
    print(f"training for {n_epochs} energy epochs ...")
    history = trainer.train(rng, n_epochs=n_epochs, lr=2e-3, lr_decay=0.99, verbose=True)
    print(f"final energy loss {history.epoch_loss[-1]:.6f}")
    n_force = max(n_epochs // 5, 5)
    print(f"fine-tuning with the force loss for {n_force} epochs ...")
    trainer.train(rng, n_epochs=n_force, lr=5e-4, force_weight=2.0)

    ev = trainer.evaluate_energies(test)
    energy = parity_report(ev["predicted"], ev["reference"])
    print(
        f"test energies: MAE {energy['mae'] * 1e3:.2f} meV/atom, "
        f"R^2 {energy['r2']:.4f}   (paper: 2.9 meV/atom, 0.998)"
    )
    fv = trainer.evaluate_forces(test[:10])
    force = parity_report(fv["predicted"], fv["reference"])
    print(
        f"test forces:   MAE {force['mae']:.3f} eV/A, R^2 {force['r2']:.3f}"
        f"   (paper: 0.04 eV/A, 0.880)"
    )

    # Persist and drive a KMC run with the trained model.
    with tempfile.NamedTemporaryFile(suffix=".npz") as fh:
        model.save(fh.name)
        loaded = NNPotential.load(fh.name)
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=2e-3)
    engine = TensorKMCEngine(lattice, loaded, tet, temperature=600.0, rng=rng)
    engine.run(n_steps=10)
    print(f"KMC with the trained NNP: {engine.step_count} events, t = {engine.time:.2e} s")


if __name__ == "__main__":
    main()
