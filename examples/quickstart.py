#!/usr/bin/env python3
"""Quickstart: a minimal NNP-driven AKMC simulation.

Builds a small Fe-Cu alloy box with dilute vacancies, evaluates hop
energetics with the EAM potential through the triple-encoding tables, runs a
few thousand KMC events, and prints the trajectory summary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TensorKMCEngine, TripleEncoding
from repro.analysis import analyse_precipitation
from repro.lattice import LatticeState
from repro.potentials import EAMPotential


def main() -> None:
    rng = np.random.default_rng(2026)

    # 1. Geometry: triple-encoding tables for the interaction cutoff.
    #    (rcut = one lattice constant keeps this demo fast; the paper's
    #    standard is 6.5 A -> N_local = 112, N_region = 253.)
    tet = TripleEncoding(rcut=2.87)
    print(f"TET sizes: {tet.describe()}")

    # 2. Potential: the analytic Fe-Cu EAM, tabulated at the lattice shells.
    potential = EAMPotential(tet.shell_distances)

    # 3. A 12^3-cell periodic BCC box: 1.34 at.% Cu, a few vacancies.
    lattice = LatticeState((12, 12, 12))
    lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=1e-3)
    print(f"initial: {lattice}")

    # 4. The TensorKMC engine: vacancy cache + tree propensity.
    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=600.0, rng=rng
    )

    # 5. Run and report.
    before = analyse_precipitation(lattice, 0.0)
    engine.run(n_steps=2000)
    after = analyse_precipitation(lattice, engine.time)

    print(f"executed {engine.step_count} events")
    print(f"simulated time: {engine.time:.3e} s")
    print(f"kernel: {engine.summary()}")
    print(f"isolated Cu: {before.isolated} -> {after.isolated}")
    print(f"largest Cu cluster: {before.max_size} -> {after.max_size}")


if __name__ == "__main__":
    main()
