"""Physics validation — the KMC chain samples the Boltzmann distribution.

The rate law (Eq. 2's half-delta rule) satisfies detailed balance with the
total lattice energy, so a long trajectory must spend time in each
configuration class proportionally to its Boltzmann weight.  We check this
exactly solvable case: one vacancy + one Cu atom in a periodic Fe box.  By
translation symmetry every configuration is classified by the vacancy-Cu
displacement shell; the exact stationary distribution is enumerable
(multiplicity x exp(-E/kT) over all 127 relative displacements), and the
simulated time-weighted shell occupancy must match it.

This goes beyond the paper's validation (Fig. 8 checks engine equivalence,
not thermodynamics) — it pins the sampled ensemble itself.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.constants import CU, FE, KB_EV, VACANCY
from repro.core import TensorKMCEngine
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.potentials import counts_from_types

BOX = (4, 4, 4)
TEMPERATURE = 1100.0  # hot -> fast mixing between shells
N_STEPS = 12000


def _total_energy(lattice, potential, tet):
    ids = np.arange(lattice.n_sites)
    half = lattice.half_coords(ids)
    nb = lattice.ids_from_half(half[:, None, :] + tet.cet_offsets[None, :, :])
    counts = counts_from_types(lattice.occupancy[nb], tet.cet_shell, tet.n_shells)
    return potential.region_energy(lattice.occupancy[ids], counts)


def _shell_of_displacement(lattice, vac, cu, tet) -> int:
    """Shell index of the vacancy-Cu separation; -1 for beyond the shells."""
    d = np.linalg.norm(lattice.minimum_image_displacement(vac, cu))
    for s, dist in enumerate(tet.shell_distances):
        if abs(d - dist) < 1e-6:
            return s
    return -1


def exact_distribution(tet, potential) -> Dict[int, float]:
    """Boltzmann shell probabilities by explicit enumeration."""
    lattice = LatticeState(BOX)
    vac = lattice.site_id(0, 0, 0, 0)
    beta = 1.0 / (KB_EV * TEMPERATURE)
    energies, shells = [], []
    for cu in range(lattice.n_sites):
        if cu == vac:
            continue
        lattice.occupancy[:] = FE
        lattice.occupancy[vac] = VACANCY
        lattice.occupancy[cu] = CU
        energies.append(_total_energy(lattice, potential, tet))
        shells.append(_shell_of_displacement(lattice, vac, cu, tet))
    energies = np.asarray(energies)
    boltzmann = np.exp(-beta * (energies - energies.min()))
    weights: Dict[int, float] = {}
    for shell, w in zip(shells, boltzmann):
        weights[shell] = weights.get(shell, 0.0) + float(w)
    total = sum(weights.values())
    return {s: w / total for s, w in weights.items()}


def simulated_distribution(tet, potential, seed=0) -> Dict[int, float]:
    """Time-weighted shell occupancy of a long KMC trajectory."""
    lattice = LatticeState(BOX)
    lattice.occupancy[:] = FE
    vac = lattice.site_id(0, 2, 2, 2)
    cu = lattice.site_id(1, 0, 0, 0)
    lattice.occupancy[vac] = VACANCY
    lattice.occupancy[cu] = CU
    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=TEMPERATURE,
        rng=np.random.default_rng(seed),
    )
    occupancy: Dict[int, float] = {}

    def current_shell() -> int:
        vac_now = int(lattice.vacancy_ids[0])
        cu_now = int(lattice.sites_of_species(CU)[0])
        return _shell_of_displacement(lattice, vac_now, cu_now, tet)

    shell = current_shell()
    for _ in range(N_STEPS):
        event = engine.step()
        # dt is the waiting time spent in the *pre-hop* configuration.
        occupancy[shell] = occupancy.get(shell, 0.0) + event.dt
        shell = current_shell()
    total = sum(occupancy.values())
    return {s: w / total for s, w in occupancy.items()}


def test_equilibrium_sampling(tet_small, eam_small, experiment_reports, benchmark):
    exact = exact_distribution(tet_small, eam_small)
    simulated = simulated_distribution(tet_small, eam_small)

    report = ExperimentReport(
        "Validation: Boltzmann sampling",
        "vacancy-Cu shell occupancy, exact enumeration vs 12k-event trajectory",
    )
    labels = {0: "1NN", 1: "2NN", -1: "beyond 2NN"}
    for shell in sorted(exact, key=lambda s: (s < 0, s)):
        report.add(
            f"P({labels.get(shell, f'shell {shell}')})",
            f"{exact[shell]:.4f} (exact)",
            f"{simulated.get(shell, 0.0):.4f} (KMC)",
        )
    experiment_reports(report)

    for shell, p_exact in exact.items():
        p_sim = simulated.get(shell, 0.0)
        assert p_sim == p_exact or abs(p_sim - p_exact) < max(
            0.25 * p_exact, 0.02
        ), f"shell {shell}: {p_sim} vs {p_exact}"

    # Timed kernel: one enumeration of the exact distribution.
    benchmark(lambda: exact_distribution(tet_small, eam_small))
