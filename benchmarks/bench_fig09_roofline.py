"""Fig. 9 — roofline analysis of the energy kernels.

Paper (N,H,W = 32,16,16; channels 64-128-128-128-64-1):

* per-layer AI of the original operator: 0.48 up to 21.3 (< ridge 43.63,
  memory-bound);
* big-fusion: traffic 56 MB -> 2 MB, AI 509.1 (compute-bound);
* big-fusion reaches 76.64% of single-precision peak.

Our accounting counts each layer's in/out/weights traffic once (the paper's
56 MB convention counts additional unfused passes), so the absolute totals
differ while every qualitative statement — which side of the ridge each
operator lands on, and the order-of-magnitude traffic collapse — reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.constants import PAPER_CHANNELS
from repro.io.report import ExperimentReport
from repro.nnp import ElementNetworks
from repro.operators import BigFusionOperator
from repro.sunway import SW26010_PRO, analyse_network

M = 32 * 16 * 16


def test_fig09_roofline(experiment_reports, benchmark):
    analysis = analyse_network(M, PAPER_CHANNELS, SW26010_PRO)

    report = ExperimentReport("Fig. 9", "roofline of the energy kernels")
    report.add("machine ridge point", "43.63 F/B", f"{SW26010_PRO.ridge_point:.2f} F/B")
    report.add(
        "per-layer AI (original)",
        "0.48 - 21.3",
        f"{min(analysis.per_layer_ai):.2f} - {max(analysis.per_layer_ai):.2f}",
        "per-pass counting differs",
    )
    report.add(
        "original traffic", "56 MB", f"{analysis.original_total_bytes / 1e6:.1f} MB",
        "we count in+out+weights once per layer",
    )
    report.add("fused traffic", "2 MB", f"{analysis.fused_bytes / 1e6:.2f} MB")
    report.add("fused AI", "509.1 F/B", f"{analysis.fused_ai:.1f} F/B")
    report.add("original bound", "memory", analysis.original_bound)
    report.add("big-fusion bound", "compute", analysis.fused_bound)
    report.add("big-fusion peak fraction", "76.64%", "76.64%", "adopted as model constant")
    experiment_reports(report)

    assert analysis.original_bound == "memory"
    assert analysis.fused_bound == "compute"
    assert analysis.original_total_bytes / analysis.fused_bytes > 10.0

    # Timed kernel: the functional big-fusion operator on the Fig. 9 batch.
    nets = ElementNetworks(PAPER_CHANNELS, np.random.default_rng(0))
    net = nets.nets[0]
    op = BigFusionOperator(net.weights, net.biases)
    x = np.random.default_rng(1).standard_normal((M, 64)).astype(np.float32)
    out = benchmark(lambda: op(x))
    assert out.shape == (M, 1)
