"""Fig. 12 — strong scaling of 1.92 trillion atoms, 780k -> 24.96M cores.

Paper: near-linear strong scaling; 85% parallel efficiency at 24,960,000
cores (384,000 CGs), with t_stop = 2e-8 s and the tree propensity strategy.

We cannot run 24.96 M cores: real multi-rank `SublatticeKMC` runs calibrate
the per-event compute cost and per-cycle communication volume, and the
analytic protocol model of ``repro.parallel.scaling_model`` extrapolates to
the paper's configurations (see DESIGN.md for the substitution argument).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import ATTEMPT_FREQUENCY, EA0_FE, KB_EV
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.parallel import (
    ScalingParameters,
    SublatticeKMC,
    parallel_efficiency,
    strong_scaling,
)

PAPER_CG_COUNTS = [12000, 24000, 48000, 96000, 192000, 384000]


def calibrate(tet, potential, n_ranks=2, seed=3):
    """Measure per-event compute cost and ghost traffic on a real run."""
    lattice = LatticeState((16, 12, 12))
    lattice.randomize_alloy(np.random.default_rng(seed), 0.0134, 0.003)
    sim = SublatticeKMC(
        lattice, potential, tet, n_ranks=n_ranks, temperature=900.0,
        t_stop=2e-10, seed=seed,
    )
    sim.run(16)
    events = max(sim.total_events, 1)
    compute_per_event = sum(c.compute_seconds for c in sim.cycles) / events
    boundary_cells = sum(
        6.0 * (r.window.box.n_cells ** (2.0 / 3.0)) for r in sim.ranks
    )
    bytes_per_boundary_cell = sim.world.stats.bytes_sent / (
        boundary_cells * len(sim.cycles)
    )
    return compute_per_event, bytes_per_boundary_cell


def paper_parameters(compute_per_event, bytes_per_boundary_cell):
    """Scaling parameters for the paper's 573 K Fe-Cu workload."""
    kT = KB_EV * 573.0
    rate_per_vacancy = 8 * ATTEMPT_FREQUENCY * np.exp(-EA0_FE / kT)
    return ScalingParameters(
        compute_seconds_per_event=compute_per_event,
        events_per_atom_second=rate_per_vacancy * 8e-6,
        bytes_per_boundary_cell=bytes_per_boundary_cell,
    )


def test_fig12_strong_scaling(tet_small, nnp_tiny, experiment_reports, benchmark):
    compute_per_event, bytes_per_cell = calibrate(tet_small, nnp_tiny)
    # Replace the measured Python-interpreter event cost with the modeled
    # big-fusion evaluation cost of one event on a CG (Fig. 11), keeping the
    # measured communication volume: the *protocol* is what is extrapolated.
    params = paper_parameters(2.0e-4, bytes_per_cell)

    points = strong_scaling(params, atoms_total=1.92e12, cg_counts=PAPER_CG_COUNTS)
    eff = parallel_efficiency(points)

    report = ExperimentReport(
        "Fig. 12", "strong scaling, 1.92T atoms (calibrated protocol model)"
    )
    for p, e in zip(points, eff):
        report.add(
            f"{p.n_cores:,} cores",
            "85% at 24.96M cores" if p.n_cores == 24_960_000 else "(bar)",
            f"cycle {p.cycle_time * 1e3:.2f} ms, efficiency {e * 100:.1f}%",
        )
    report.add(
        "calibration",
        "measured on Sunway",
        f"python run: {compute_per_event * 1e3:.2f} ms/event measured, "
        f"{bytes_per_cell:.3f} B/boundary-cell; modeled CG event 0.2 ms",
    )
    experiment_reports(report)

    assert eff[0] == pytest.approx(1.0)
    assert 0.78 <= eff[-1] <= 0.92  # paper: 85%
    assert all(b <= a + 1e-12 for a, b in zip(eff, eff[1:]))
    assert points[-1].n_cores == 24_960_000

    # Timed kernel: one real sublattice cycle on simulated ranks.
    lattice = LatticeState((16, 12, 12))
    lattice.randomize_alloy(np.random.default_rng(0), 0.0134, 0.003)
    sim = SublatticeKMC(
        lattice, nnp_tiny, tet_small, n_ranks=2, temperature=900.0,
        t_stop=2e-10, seed=0,
    )
    benchmark(sim.cycle)
