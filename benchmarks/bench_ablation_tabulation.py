"""Ablation — tabulated features (Eq. 6) vs direct exponential evaluation.

DESIGN.md design choice: on a rigid lattice the descriptor only sees discrete
shell distances, so TensorKMC replaces per-neighbour ``exp`` evaluations with
pre-computed TABLE sums.  This bench measures the real NumPy speedup of that
substitution and verifies the two paths agree bit-for-bit at shell distances.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.tet import TripleEncoding
from repro.io.report import ExperimentReport
from repro.potentials import FeatureTable
from repro.potentials.base import counts_from_types


def _direct_eq5(types, tet, table):
    """Eq. 5 evaluated directly: one exp() batch per neighbour slot."""
    n_sites = types.shape[0]
    n_dim = table.n_dim
    feats = np.zeros((n_sites, 2, n_dim), dtype=np.float64)
    dists = tet.shell_distances[tet.cet_shell]
    p = table.pq[:, 0]
    q = table.pq[:, 1]
    for j in range(tet.n_local):
        term = np.exp(-((dists[j] / p) ** q))  # recomputed, as Eq. 5 would
        t = types[:, j]
        valid = t != 2
        np.add.at(feats, (np.nonzero(valid)[0], t[valid]), term)
    return feats.reshape(n_sites, -1)


def test_ablation_tabulation(experiment_reports, benchmark):
    tet = TripleEncoding(rcut=6.5)
    table = FeatureTable(tet.shell_distances, dtype=np.float64)
    rng = np.random.default_rng(0)
    n_sites = 512
    types = rng.integers(0, 3, (n_sites, tet.n_local)).astype(np.uint8)

    def tabulated():
        counts = counts_from_types(types, tet.cet_shell, tet.n_shells)
        return table.features_from_counts(counts.astype(np.float64))

    t0 = time.perf_counter()
    direct = _direct_eq5(types, tet, table)
    direct_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    tab = tabulated()
    tab_seconds = time.perf_counter() - t0

    assert np.allclose(direct, tab, atol=1e-10)
    speedup = direct_seconds / tab_seconds

    report = ExperimentReport(
        "Ablation: Eq. 6 tabulation", "TABLE sums vs direct exp() evaluation"
    )
    report.add("results identical", "required", "yes")
    report.add(
        "speedup (NumPy, 512 sites x 112 neighbours)",
        "motivates Eq. 6",
        f"{speedup:.1f}x",
    )
    experiment_reports(report)
    assert speedup > 2.0

    benchmark(tabulated)
