"""Fig. 10 — the operator optimisation ladder.

Paper speedups over the scalar base version: matmul 1.23x, +SIMD 16-22x,
+(Conv2D,Bias,ReLU) fusion 33-41x, +big-fusion 131-161x.

The modeled ladder (Sunway cost model, see repro.operators.variants for the
calibration) is asserted to land inside the paper bands.  Real NumPy wall
times of the functional implementations are measured alongside — on a host
CPU the memory hierarchy differs, so only the modeled ratios are checked
against the paper.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constants import PAPER_CHANNELS
from repro.io.report import ExperimentReport
from repro.nnp import ElementNetworks
from repro.operators import (
    BigFusionOperator,
    conv1x1_loop,
    fig10_ladder,
    ladder_speedups,
    layered_forward,
    paper_bands,
)

M = 32 * 16 * 16


def _measured_times(net) -> dict:
    """Real NumPy wall times of the functional variants (host CPU)."""
    x = np.random.default_rng(2).standard_normal((M, 64)).astype(np.float32)
    out = {}
    # Loop conv is far too slow at full M: time a slice and scale linearly.
    slice_m = 64
    t0 = time.perf_counter()
    conv1x1_loop(x[:slice_m], net.weights[0])
    out["base(loop, scaled)"] = (time.perf_counter() - t0) * (M / slice_m)
    t0 = time.perf_counter()
    layered_forward(x, net.weights, net.biases, fused=False)
    out["unfused"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    layered_forward(x, net.weights, net.biases, fused=True)
    out["fused"] = time.perf_counter() - t0
    op = BigFusionOperator(net.weights, net.biases)
    t0 = time.perf_counter()
    op(x)
    out["bigfusion"] = time.perf_counter() - t0
    return out


def test_fig10_ladder(experiment_reports, benchmark):
    nets = ElementNetworks(PAPER_CHANNELS, np.random.default_rng(0))
    net = nets.nets[0]
    ladder = fig10_ladder(net.weights, net.biases, M)
    speedups = ladder_speedups(ladder)
    bands = paper_bands()
    measured = _measured_times(net)

    report = ExperimentReport("Fig. 10", "operator optimisation ladder (speedup over base)")
    for variant in ladder:
        lo, hi = bands[variant.name]
        paper = "1.0x" if variant.name == "base" else f"{lo:.0f}-{hi:.0f}x" if hi > 2 else f"{lo:.2f}x"
        report.add(
            f"{variant.name}",
            paper,
            f"{speedups[variant.name]:.1f}x "
            f"({variant.modeled_time * 1e3:.2f} ms modeled)",
        )
    report.add(
        "host NumPy wall times",
        "n/a",
        ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in measured.items()),
        "host memory hierarchy differs",
    )
    experiment_reports(report)

    for name, (lo, hi) in bands.items():
        assert lo * 0.9 <= speedups[name] <= hi * 1.1, name
    # Functional NumPy ladder is monotone too (loop >> matmul paths).
    assert measured["base(loop, scaled)"] > measured["unfused"]

    # Timed kernel: the fused per-layer forward (SWDNN-equivalent).
    x = np.random.default_rng(3).standard_normal((M, 64)).astype(np.float32)
    benchmark(lambda: layered_forward(x, net.weights, net.biases, fused=True))
