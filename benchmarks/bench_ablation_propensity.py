"""Ablation — tree vs linear propensity updates ("tree strategy", Sec. 4.4).

The paper uses a tree strategy for propensity updates in all scalability
runs.  This bench measures the update+select cost of the Fenwick tree against
the linear cumulative scan as the vacancy count grows, confirming the
O(log n) vs O(n) crossover that motivates the tree at mesoscale vacancy
populations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.propensity import FenwickPropensity, LinearPropensity
from repro.io.report import ExperimentReport


def _workload(store, n_slots, n_ops, rng):
    values = rng.random(n_slots) + 0.01
    for i, v in enumerate(values):
        store.update(i, v)
    t0 = time.perf_counter()
    for _ in range(n_ops):
        slot, _ = store.select(rng.random() * store.total * 0.999999)
        store.update(slot, rng.random() + 0.01)
    return time.perf_counter() - t0


def test_ablation_propensity(experiment_reports, benchmark):
    rng = np.random.default_rng(0)
    n_ops = 400
    sizes = [64, 1024, 16384]
    rows = {}
    for n in sizes:
        t_lin = _workload(LinearPropensity(n), n, n_ops, np.random.default_rng(1))
        t_fen = _workload(FenwickPropensity(n), n, n_ops, np.random.default_rng(1))
        rows[n] = (t_lin, t_fen)

    report = ExperimentReport(
        "Ablation: propensity tree", "Fenwick tree vs linear scan (update+select)"
    )
    for n, (t_lin, t_fen) in rows.items():
        report.add(
            f"{n} vacancies",
            "tree wins at scale",
            f"linear {t_lin * 1e3:.1f} ms vs tree {t_fen * 1e3:.1f} ms "
            f"({t_lin / t_fen:.1f}x)",
        )
    experiment_reports(report)

    # At mesoscale vacancy counts the tree must win clearly.
    t_lin, t_fen = rows[16384]
    assert t_fen < t_lin

    # Timed kernel: tree ops at the largest size.
    store = FenwickPropensity(16384)
    values = rng.random(16384) + 0.01
    for i, v in enumerate(values):
        store.update(i, v)

    def tree_op():
        slot, _ = store.select(rng.random() * store.total * 0.999999)
        store.update(slot, rng.random() + 0.01)

    benchmark(tree_op)
