"""Shared benchmark plumbing.

Every bench registers an :class:`~repro.io.report.ExperimentReport` through
the ``experiment_reports`` fixture; the collected paper-vs-measured tables
are printed in the terminal summary (visible even without ``-s``) so that
``pytest benchmarks/ --benchmark-only`` reproduces the paper's rows/series
alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

from typing import List

import numpy as np
import pytest

from repro.core.tet import TripleEncoding
from repro.io.report import ExperimentReport
from repro.nnp import ElementNetworks, NNPotential
from repro.potentials import EAMPotential, FeatureTable

_REPORTS: List[ExperimentReport] = []


@pytest.fixture()
def experiment_reports():
    """Register reports for the end-of-run summary."""

    def _register(report: ExperimentReport) -> ExperimentReport:
        _REPORTS.append(report)
        return report

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper-vs-measured experiment reports")
    for report in _REPORTS:
        terminalreporter.write_line("")
        for line in report.render().splitlines():
            terminalreporter.write_line(line)


# ----------------------------------------------------------------------
# Shared cheap workloads (small cutoff keeps the 1-core runtime sane).
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def tet_small() -> TripleEncoding:
    return TripleEncoding(rcut=2.87)


@pytest.fixture(scope="session")
def tet_standard() -> TripleEncoding:
    return TripleEncoding(rcut=6.5)


@pytest.fixture(scope="session")
def eam_small(tet_small) -> EAMPotential:
    return EAMPotential(tet_small.shell_distances)


@pytest.fixture(scope="session")
def nnp_tiny(tet_small) -> NNPotential:
    """A small random-weight NNP: deterministic energetics, fast benches."""
    rng = np.random.default_rng(42)
    table = FeatureTable(tet_small.shell_distances)
    nets = ElementNetworks((2 * table.n_dim, 16, 16, 1), rng)
    model = NNPotential(table, nets, rcut=tet_small.rcut)
    model.set_standardisation(
        feature_mean=np.full(2 * table.n_dim, 0.5, dtype=np.float32),
        feature_std=np.full(2 * table.n_dim, 1.5, dtype=np.float32),
        reference_energies=np.array([-4.0, -3.6]),
        energy_scale=0.05,
    )
    return model
