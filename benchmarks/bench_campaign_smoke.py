"""Campaign smoke benchmark: shared batched evaluation must pay off.

Runs the same R=8 NNP seed sweep twice — ``mode="sequential"`` (each replica
solo through the ordinary per-engine loop) and ``mode="shared"`` (every
replica's stale rows fused into one ``evaluate_batch`` per round) — and
compares aggregate throughput.  The shared mode's whole reason to exist is
amortising the per-call overhead of the deterministic tiled-GEMM inference
across replicas, so it must deliver a real speedup (>= 1.3x here, headroom
below the ~1.5x a quiet runner shows) *while reproducing every replica's
solo trajectory bit for bit* — the occupancy digests of the two modes must
be identical, which this bench asserts before it trusts any timing.

Both timed modes run with ``row_cache="off"`` so the speedup isolates what
shared *batching* buys — the persistent row cache would otherwise absorb
most of the GEMM work in both modes and blur the ratio.  A third
interleaved variant (``shared`` with the campaign-wide row cache on)
carries the cache's own acceptance gate: across an R=8 seed sweep the
replicas revisit overwhelmingly the same local environments, so the shared
cache must report a hit rate >= 0.9 — while replaying the same digests as
both cache-off modes.

Rounds of all three variants are interleaved and each keeps its best
round, so runner-load drift hits everyone equally.  The numbers land in
``BENCH_campaign.json`` at the repo root, tracked across commits by
``benchmarks/check_perf_trajectory.py``.

Runs standalone (``python benchmarks/bench_campaign_smoke.py``) and under
pytest (``pytest benchmarks/bench_campaign_smoke.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign import ReplicaCampaign, alloy_engine_factory, seed_sweep
from repro.core.tet import TripleEncoding
from repro.nnp import ElementNetworks, NNPotential
from repro.potentials import FeatureTable

#: Replica count — the acceptance workload is an R=8 seed sweep.
N_REPLICAS = 8
N_STEPS = 60
BOX = 10
VACANCY_FRACTION = 0.02
#: Interleaved sequential/shared rounds; each mode keeps its best round.
ROUNDS = 3
#: Aggregate events/sec of the shared mode over the sequential baseline.
#: A quiet runner shows ~1.5x; 1.3 keeps the gate robust to noise.
MIN_SPEEDUP = 1.3
#: Campaign-wide row-cache hit rate across the R=8 seed sweep.
MIN_ROW_CACHE_HIT_RATE = 0.9
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"


def _nnp_potential() -> NNPotential:
    """Small randomly-initialised NNP (the bench-standard construction)."""
    tet = TripleEncoding(rcut=2.87)
    table = FeatureTable(tet.shell_distances)
    nets = ElementNetworks(
        (2 * table.n_dim, 16, 8, 1), np.random.default_rng(11)
    )
    model = NNPotential(table, nets, rcut=2.87)
    n_feat = 2 * table.n_dim
    model.set_standardisation(
        np.full(n_feat, 0.1, dtype=np.float32),
        np.full(n_feat, 2.0, dtype=np.float32),
        np.array([-4.0, -3.5]),
        0.05,
    )
    return model


def _run_once(mode: str, potential, tet, row_cache: str = "off"):
    """One full campaign in ``mode``; returns (seconds, results, campaign)."""
    factory = alloy_engine_factory(
        BOX, potential, tet, cu_fraction=0.05,
        vacancy_fraction=VACANCY_FRACTION, row_cache=row_cache,
    )
    specs = seed_sweep(range(N_REPLICAS), n_steps=N_STEPS)
    campaign = ReplicaCampaign(
        specs, factory, mode=mode, row_cache=row_cache
    )
    t0 = time.perf_counter()
    results = campaign.run()
    return time.perf_counter() - t0, results, campaign


def run_campaign_smoke() -> dict:
    """Sequential vs shared campaign at R=8; writes BENCH_campaign.json."""
    tet = TripleEncoding(rcut=2.87)
    potential = _nnp_potential()
    #: (mode, row_cache) variants; "shared_cached" carries the cache gate.
    variants = {
        "sequential": ("sequential", "off"),
        "shared": ("shared", "off"),
        "shared_cached": ("shared", "auto"),
    }
    best = {name: np.inf for name in variants}
    digests = {}
    events = {}
    aggregate = {}
    for _ in range(ROUNDS):
        for name, (mode, row_cache) in variants.items():
            seconds, results, campaign = _run_once(
                mode, potential, tet, row_cache=row_cache
            )
            best[name] = min(best[name], seconds)
            digests[name] = [r.digest for r in results]
            events[name] = sum(r.executed for r in results)
            aggregate[name] = campaign.summary()
    bitwise = (
        digests["sequential"] == digests["shared"] == digests["shared_cached"]
    )
    eps = {
        mode: events[mode] / best[mode] for mode in ("sequential", "shared")
    }
    speedup = eps["shared"] / eps["sequential"]
    shared = aggregate["shared"]
    cached = aggregate["shared_cached"]
    row_cache = {
        "hit_rate": cached.get("row_cache_hit_rate", 0.0),
        "hits": int(cached.get("row_cache_hits", 0)),
        "misses": int(cached.get("row_cache_misses", 0)),
        "entries": int(cached.get("row_cache_entries", 0)),
        "resident_bytes": int(cached.get("row_cache_bytes", 0)),
        "cached_seconds": best["shared_cached"],
        "cached_us_per_event": (
            1e6 * best["shared_cached"] / events["shared_cached"]
        ),
        "min_hit_rate": MIN_ROW_CACHE_HIT_RATE,
        "ok": cached.get("row_cache_hit_rate", 0.0) >= MIN_ROW_CACHE_HIT_RATE,
    }
    report = {
        "benchmark": "campaign_smoke",
        "replicas": N_REPLICAS,
        "steps_per_replica": N_STEPS,
        "box": BOX,
        "vacancy_fraction": VACANCY_FRACTION,
        "rounds": ROUNDS,
        "events": events["shared"],
        "sequential_seconds": best["sequential"],
        "shared_seconds": best["shared"],
        "sequential_events_per_s": eps["sequential"],
        "shared_events_per_s": eps["shared"],
        # Per-event costs in us — the units check_perf_trajectory.py tracks.
        "sequential_us_per_event": 1e6 * best["sequential"] / events["sequential"],
        "shared_us_per_event": 1e6 * best["shared"] / events["shared"],
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "bitwise_identical": bool(bitwise),
        "shared_batches": int(shared["shared_batches"]),
        "shared_rows": int(shared["shared_rows"]),
        "max_shared_batch": int(shared["max_shared_batch"]),
        "mean_shared_batch": (
            shared["shared_rows"] / shared["shared_batches"]
            if shared["shared_batches"]
            else 0.0
        ),
        "row_cache": row_cache,
        "ok": bool(bitwise) and speedup >= MIN_SPEEDUP and row_cache["ok"],
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_campaign_shared_mode_is_faster_and_bitwise():
    report = run_campaign_smoke()
    assert report["bitwise_identical"], report
    assert report["events"] == N_REPLICAS * N_STEPS, report
    # The fused batches really span replicas: mean width beats what any
    # single replica's per-step stale set could supply.
    assert report["mean_shared_batch"] > N_REPLICAS, report
    assert report["speedup"] >= MIN_SPEEDUP, report
    # The campaign-wide cache must absorb the seed sweep's recurring rows.
    assert report["row_cache"]["ok"], report["row_cache"]


def main() -> int:
    report = run_campaign_smoke()
    print(json.dumps(report, indent=2))
    print(
        f"R={report['replicas']} x {report['steps_per_replica']} events: "
        f"{report['sequential_events_per_s']:.0f} ev/s sequential vs "
        f"{report['shared_events_per_s']:.0f} ev/s shared -> "
        f"speedup {report['speedup']:.2f} (min {MIN_SPEEDUP}), "
        f"bitwise_identical={report['bitwise_identical']}"
    )
    rc = report["row_cache"]
    print(
        f"shared row cache: hit rate {rc['hit_rate']:.3f} "
        f"(min {rc['min_hit_rate']}), {rc['entries']} entries, "
        f"{rc['cached_us_per_event']:.1f} us/event with the cache on"
    )
    if not report["ok"]:
        print("FAILED")
        return 1
    print(f"OK — report written to {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
