"""Parallel smoke benchmark: the process executor must be invisible & fast.

Runs the same fixed-seed NNP sublattice campaign (box 16, 10 cycles) under
``executor="inline"`` and ``executor="process"`` at 4 and 8 ranks, rounds
interleaved with each variant keeping its best round.  Two gates:

* **Identity (unconditional).** The occupancy digest, simulated clock and
  per-cycle event counts of every process run must be bit-identical to the
  inline run at the same rank count.  This is the whole contract of the
  executor split — a fast-but-drifting pool is worthless — so the report
  is marked failed on any mismatch no matter what the timings say.
* **Throughput (hardware-gated).** With one worker per rank the pool must
  deliver >= 1.5x the inline events/s at 4 ranks on NNP rebuilds — but only
  where the arithmetic can possibly hold: the gate is enforced only when
  the process actually has >= 4 usable cores (CPU affinity-aware).  On
  smaller runners the speedup is recorded for the trajectory log and the
  gate is skipped honestly (``speedup_gate: "skipped (N cores)"``) rather
  than faked; identity still decides ``ok``.

The numbers land in ``BENCH_parallel.json`` at the repo root, tracked
across commits by ``benchmarks/check_perf_trajectory.py``.

Runs standalone (``python benchmarks/bench_parallel_smoke.py``) and under
pytest (``pytest benchmarks/bench_parallel_smoke.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign import occupancy_digest
from repro.core.tet import TripleEncoding
from repro.lattice import LatticeState
from repro.nnp import ElementNetworks, NNPotential
from repro.parallel import SublatticeKMC
from repro.parallel.executor import _effective_cores
from repro.potentials import FeatureTable

#: 4 ranks need >= 4 cells of sector width each: 16^3 is the floor (and
#: holds 8 ranks as a 2x2x2 grid of 8^3 windows too).
BOX = 16
VACANCY_FRACTION = 0.005
N_CYCLES = 10
RANK_COUNTS = (4, 8)
#: Interleaved inline/process rounds; each variant keeps its best round.
ROUNDS = 3
#: Process-pool events/s over inline at 4 ranks, one worker per rank.
MIN_SPEEDUP = 1.5
#: The speedup gate only binds where it can physically hold.
GATE_RANKS = 4
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def _nnp_potential() -> NNPotential:
    """Small randomly-initialised NNP (the bench-standard construction)."""
    tet = TripleEncoding(rcut=2.87)
    table = FeatureTable(tet.shell_distances)
    nets = ElementNetworks(
        (2 * table.n_dim, 16, 8, 1), np.random.default_rng(11)
    )
    model = NNPotential(table, nets, rcut=2.87)
    n_feat = 2 * table.n_dim
    model.set_standardisation(
        np.full(n_feat, 0.1, dtype=np.float32),
        np.full(n_feat, 2.0, dtype=np.float32),
        np.array([-4.0, -3.5]),
        0.05,
    )
    return model


def _run_once(executor: str, n_ranks: int, potential, tet):
    """One full campaign; returns (seconds, identity, exchange_wait)."""
    lattice = LatticeState((BOX, BOX, BOX))
    lattice.randomize_alloy(np.random.default_rng(3), 0.05, VACANCY_FRACTION)
    sim = SublatticeKMC(
        lattice, potential, tet, n_ranks=n_ranks, temperature=900.0,
        t_stop=2e-10, seed=5, executor=executor,
    )
    try:
        t0 = time.perf_counter()
        sim.run(N_CYCLES)
        seconds = time.perf_counter() - t0
        identity = (
            occupancy_digest(sim.gather_global()),
            sim.time,
            tuple(c.events for c in sim.cycles),
        )
        wait = sum(c.exchange_wait_seconds for c in sim.cycles)
        return seconds, identity, wait, sim.total_events
    finally:
        sim.close()


def run_parallel_smoke() -> dict:
    """Inline vs process at 4 and 8 ranks; writes BENCH_parallel.json."""
    tet = TripleEncoding(rcut=2.87)
    potential = _nnp_potential()
    variants = [
        (n_ranks, executor)
        for n_ranks in RANK_COUNTS
        for executor in ("inline", "process")
    ]
    best = {v: np.inf for v in variants}
    identities = {}
    waits = {}
    events = {}
    for _ in range(ROUNDS):
        for n_ranks, executor in variants:
            seconds, identity, wait, n_events = _run_once(
                executor, n_ranks, potential, tet
            )
            key = (n_ranks, executor)
            best[key] = min(best[key], seconds)
            identities[key] = identity
            waits[key] = wait
            events[key] = n_events

    cores = _effective_cores()
    identical = all(
        identities[(n, "inline")] == identities[(n, "process")]
        for n in RANK_COUNTS
    )
    per_ranks = {}
    for n_ranks in RANK_COUNTS:
        inline_s = best[(n_ranks, "inline")]
        process_s = best[(n_ranks, "process")]
        n_events = events[(n_ranks, "inline")]
        per_ranks[f"ranks{n_ranks}"] = {
            "events": n_events,
            "inline_seconds": inline_s,
            "process_seconds": process_s,
            "inline_us_per_event": 1e6 * inline_s / max(n_events, 1),
            "process_us_per_event": 1e6 * process_s / max(n_events, 1),
            "inline_events_per_s": n_events / inline_s,
            "process_events_per_s": n_events / process_s,
            "speedup": inline_s / process_s,
            "exchange_wait_seconds": waits[(n_ranks, "process")],
            "digest_identical": (
                identities[(n_ranks, "inline")]
                == identities[(n_ranks, "process")]
            ),
        }

    speedup = per_ranks[f"ranks{GATE_RANKS}"]["speedup"]
    gate_enforced = cores >= GATE_RANKS
    if gate_enforced:
        speedup_gate = "enforced"
        ok = bool(identical) and speedup >= MIN_SPEEDUP
    else:
        # One worker per rank cannot beat the inline loop without the
        # cores to run on; record the honest ratio, skip the gate.
        speedup_gate = f"skipped ({cores} cores < {GATE_RANKS} workers)"
        ok = bool(identical)

    report = {
        "benchmark": "parallel_smoke",
        "box": BOX,
        "vacancy_fraction": VACANCY_FRACTION,
        "cycles": N_CYCLES,
        "rounds": ROUNDS,
        "cores": cores,
        "bitwise_identical": bool(identical),
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "speedup_gate": speedup_gate,
        **per_ranks,
        "ok": ok,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_process_executor_is_bitwise_and_fast_enough():
    report = run_parallel_smoke()
    # Identity gates unconditionally — every rank count, digest + clock +
    # per-cycle events.
    for n_ranks in RANK_COUNTS:
        assert report[f"ranks{n_ranks}"]["digest_identical"], report
    assert report["bitwise_identical"], report
    if report["speedup_gate"] == "enforced":
        assert report["speedup"] >= MIN_SPEEDUP, report
    assert report["ok"], report


def main() -> int:
    report = run_parallel_smoke()
    print(json.dumps(report, indent=2))
    for n_ranks in RANK_COUNTS:
        entry = report[f"ranks{n_ranks}"]
        print(
            f"ranks={n_ranks}: {entry['inline_events_per_s']:.0f} ev/s "
            f"inline vs {entry['process_events_per_s']:.0f} ev/s process "
            f"-> speedup {entry['speedup']:.2f}, "
            f"digest_identical={entry['digest_identical']}"
        )
    print(
        f"speedup gate at {GATE_RANKS} workers: {report['speedup_gate']} "
        f"(min {MIN_SPEEDUP}, {report['cores']} cores)"
    )
    if not report["ok"]:
        print("FAILED")
        return 1
    print(f"OK — report written to {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
