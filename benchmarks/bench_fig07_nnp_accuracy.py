"""Fig. 7 — NNP vs 'DFT' parity: energies and atomic forces.

Paper: MAE 2.9 meV/atom (energy) and 0.04 eV/A (force); R^2 scores 0.998 and
0.880 on the held-out test split of 540 Fe-Cu structures (400 train).

We generate the same ensemble labelled by the EAM oracle (the FHI-aims
substitution, see DESIGN.md) and train the paper's architecture from scratch
in two phases: an energy-only pre-train, then fine-tuning with the exact
double-backprop force loss.  The budget is sized for a single laptop core,
so parities land in the paper's regime rather than at identical decimals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import PAPER_CHANNELS
from repro.io.report import ExperimentReport
from repro.nnp import (
    ElementNetworks,
    NNPotential,
    NNPTrainer,
    generate_structures,
    parity_report,
    train_test_split,
)
from repro.potentials import EAMPotential, FeatureTable

#: Scaled-down ensemble: same 64-site cells, fewer structures than 540 to
#: keep the single-core runtime in minutes.
N_STRUCTURES = 180
N_TRAIN = 140
N_EPOCHS_ENERGY = 100
N_EPOCHS_FORCE = 25
FORCE_WEIGHT = 2.0


@pytest.fixture(scope="module")
def trained():
    from repro.core.tet import TripleEncoding

    tet = TripleEncoding(rcut=6.5)
    oracle = EAMPotential(tet.shell_distances)
    rng = np.random.default_rng(7)
    structures = generate_structures(oracle, rng, n_structures=N_STRUCTURES)
    train, test = train_test_split(structures, rng, n_train=N_TRAIN)

    table = FeatureTable(tet.shell_distances)
    nets = ElementNetworks(PAPER_CHANNELS, rng)
    model = NNPotential(table, nets, rcut=6.5)
    trainer = NNPTrainer(model, train)
    history = trainer.train(
        rng, n_epochs=N_EPOCHS_ENERGY, lr=2e-3, lr_decay=0.99
    )
    trainer.train(
        rng, n_epochs=N_EPOCHS_FORCE, lr=5e-4, lr_decay=0.99,
        force_weight=FORCE_WEIGHT,
    )
    return model, trainer, train, test, history


def test_fig07_energy_and_force_parity(trained, experiment_reports, benchmark):
    model, trainer, train, test, history = trained

    # Timed kernel: per-atom energy prediction on the lattice path.
    rng = np.random.default_rng(0)
    n = 2048
    counts = rng.integers(0, 4, (n, model.table.n_shells, 2)).astype(np.float32)
    types = rng.integers(0, 2, n)
    energies = benchmark(lambda: model.energies_from_counts(types, counts))
    assert energies.shape == (n,)

    ev = trainer.evaluate_energies(test)
    energy = parity_report(ev["predicted"], ev["reference"])
    fv = trainer.evaluate_forces(test[: min(len(test), 20)])
    force = parity_report(fv["predicted"], fv["reference"])

    report = ExperimentReport(
        "Fig. 7", "NNP vs DFT-oracle parity (test split)"
    )
    report.add("energy MAE", "2.9 meV/atom", f"{energy['mae'] * 1e3:.1f} meV/atom")
    report.add("energy R^2", "0.998", f"{energy['r2']:.4f}")
    report.add("force MAE", "0.04 eV/A", f"{force['mae']:.3f} eV/A")
    report.add("force R^2", "0.880", f"{force['r2']:.3f}")
    report.add(
        "setup", "540 structs / 400 train / DFT",
        f"{N_STRUCTURES} structs / {N_TRAIN} train / EAM oracle",
        "FHI-aims substitution",
    )
    report.add(
        "objective", "energy + force",
        f"{N_EPOCHS_ENERGY} energy epochs + {N_EPOCHS_FORCE} "
        f"force-fine-tune epochs (w_f={FORCE_WEIGHT})",
        "double-backprop force loss",
    )
    experiment_reports(report)

    # Shape assertions: same regime as the paper.
    assert energy["r2"] > 0.99
    assert energy["mae"] < 0.010  # < 10 meV/atom
    assert force["r2"] > 0.7  # paper: 0.880, reached via force fine-tuning
    assert history.epoch_loss[-1] < history.epoch_loss[0]
