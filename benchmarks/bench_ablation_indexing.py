"""Ablation — Eq. 4 direct indexing vs the POS_ID lookup array.

DESIGN.md design choice (paper Sec. 3.3): TensorKMC computes storage indices
in closed form instead of materialising POS_ID.  This bench reports the
memory eliminated (the entire point) and the lookup-throughput trade, and
verifies both schemes agree on every site of the window.
"""

from __future__ import annotations

import numpy as np

from repro.io.report import ExperimentReport
from repro.lattice import DirectIndexer, PaddedWindow, PosIdIndexer


def test_ablation_indexing(experiment_reports, benchmark):
    window = PaddedWindow(local_shape=(24, 24, 24), ghost=5)
    direct = DirectIndexer(window)
    table = PosIdIndexer(window)

    px, py, pz = window.padded_shape
    rng = np.random.default_rng(0)
    n = 100_000
    s = rng.integers(0, 2, n)
    i = rng.integers(0, px, n)
    j = rng.integers(0, py, n)
    k = rng.integers(0, pz, n)

    assert np.array_equal(direct.index_of(s, i, j, k), table.index_of(s, i, j, k))

    report = ExperimentReport(
        "Ablation: Eq. 4 indexing", "direct computation vs POS_ID lookup"
    )
    report.add(
        "lookup memory (24^3-cell window, ghost 5)",
        "POS_ID removed entirely",
        f"POS_ID {table.memory_bytes / 1e6:.1f} MB vs direct "
        f"{direct.memory_bytes} B",
    )
    report.add(
        "POS_ID share of a 128M-atom process",
        "2009 MB (Table 1)",
        f"{128e6 * 8 / 1e6:.0f} MB at int64",
    )
    report.add("mappings identical", "required", "yes")
    experiment_reports(report)

    assert direct.memory_bytes == 0
    assert table.memory_bytes == 2 * 34**3 * 8  # the full padded window

    benchmark(lambda: direct.index_of(s, i, j, k))
