"""Fig. 11 — serial comparison: x86 vs SW vs SW(opt), both cutoffs.

Paper (per Sec. 4.3):

* feature: MPE-serial is ~5x slower than EPYC; the CPE fast feature operator
  is ~60x faster than MPE-serial (~14x vs EPYC);
* energy: SWDNN fused layers ~3x faster than EPYC; big-fusion cuts another
  ~80% (~15x vs EPYC);
* overall: SW(opt) ~11x faster than the x86 TensorFlow version and ~17x
  faster than the TensorFlow/SWDNN Sunway version.

The three platforms are evaluated with the machine models of
``repro.sunway.spec`` on the workload of one vacancy-system evaluation
(1 + 8 states) at both cutoffs; ordering and magnitudes are asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.constants import PAPER_CHANNELS
from repro.core.tet import TripleEncoding
from repro.io.report import ExperimentReport
from repro.nnp import ElementNetworks
from repro.operators import (
    FEATURE_ENTRY_BYTES,
    FUSED_GEMM_EFF,
    BigFusionOperator,
    FastFeatureOperator,
)
from repro.operators.fused import layered_forward
from repro.potentials import FeatureTable
from repro.sunway import EPYC_7452, SW26010_PRO, CostLedger


@dataclass
class PlatformTimes:
    feature: float
    energy: float

    @property
    def total(self) -> float:
        return self.feature + self.energy


def _workload_times(rcut: float) -> Dict[str, PlatformTimes]:
    tet = TripleEncoding(rcut=rcut)
    table = FeatureTable(tet.shell_distances)
    n_states = 1 + tet.N_DIRECTIONS
    entries = n_states * tet.n_region * tet.n_local
    gather_bytes = entries * FEATURE_ENTRY_BYTES
    m = n_states * tet.n_region

    nets = ElementNetworks(PAPER_CHANNELS, np.random.default_rng(0))
    net = nets.nets[0]

    # --- x86 (EPYC + libtensorflow, Fig. 11 'x86') -----------------------
    x86_feature = gather_bytes / EPYC_7452.random_bandwidth
    flops = sum(
        2.0 * m * ci * co + 2.0 * m * co
        for ci, co in zip(PAPER_CHANNELS[:-1], PAPER_CHANNELS[1:])
    )
    x86_energy = flops / (EPYC_7452.peak_flops * EPYC_7452.gemm_efficiency)

    # --- SW (MPE feature + SWDNN fused per-layer energy) -----------------
    sw_feature = gather_bytes / SW26010_PRO.mpe_random_bandwidth
    ledger = CostLedger(SW26010_PRO)
    x = np.zeros((m, PAPER_CHANNELS[0]), dtype=np.float32)
    layered_forward(
        x, net.weights, net.biases, fused=True, ledger=ledger,
        gemm_efficiency=FUSED_GEMM_EFF,
    )
    sw_energy = ledger.serial_time()

    # --- SW(opt): fast feature operator + big-fusion ----------------------
    fast_ledger = CostLedger(SW26010_PRO)
    op = FastFeatureOperator(tet, table)
    states = np.zeros((n_states, tet.n_all), dtype=np.uint8)
    op(states, ledger=fast_ledger)
    swopt_feature = fast_ledger.overlapped_time()
    swopt_energy = BigFusionOperator(net.weights, net.biases).modeled_time(m)

    return {
        "x86": PlatformTimes(x86_feature, x86_energy),
        "SW": PlatformTimes(sw_feature, sw_energy),
        "SW(opt)": PlatformTimes(swopt_feature, swopt_energy),
    }


def test_fig11_serial_comparison(experiment_reports, benchmark):
    results = {rcut: _workload_times(rcut) for rcut in (6.5, 5.8)}
    t65 = results[6.5]

    report = ExperimentReport(
        "Fig. 11", "serial x86 vs SW vs SW(opt), per vacancy-system evaluation"
    )
    for rcut, times in results.items():
        for platform, pt in times.items():
            report.add(
                f"r_cut={rcut}  {platform}",
                "(bar chart)",
                f"feature {pt.feature * 1e3:.3f} ms, energy "
                f"{pt.energy * 1e3:.3f} ms, total {pt.total * 1e3:.3f} ms",
            )
    report.add(
        "feature: SW serial vs x86", "~5x slower",
        f"{t65['SW'].feature / t65['x86'].feature:.1f}x slower",
    )
    report.add(
        "feature: SW(opt) vs SW serial", "~60x faster",
        f"{t65['SW'].feature / t65['SW(opt)'].feature:.1f}x faster",
    )
    report.add(
        "feature: SW(opt) vs x86", "~14x faster",
        f"{t65['x86'].feature / t65['SW(opt)'].feature:.1f}x faster",
    )
    report.add(
        "energy: SW vs x86", "~3x faster",
        f"{t65['x86'].energy / t65['SW'].energy:.1f}x faster",
    )
    report.add(
        "energy: SW(opt) vs SW", "~80% reduction",
        f"{(1 - t65['SW(opt)'].energy / t65['SW'].energy) * 100:.0f}% reduction",
    )
    report.add(
        "overall: SW(opt) vs x86", "~11x faster",
        f"{t65['x86'].total / t65['SW(opt)'].total:.1f}x faster",
    )
    report.add(
        "overall: SW(opt) vs SW", "~17x faster",
        f"{t65['SW'].total / t65['SW(opt)'].total:.1f}x faster",
    )
    report.add(
        "shorter cutoff 5.8 A", "all bars shrink",
        f"SW(opt) total {results[5.8]['SW(opt)'].total * 1e3:.3f} ms vs "
        f"{t65['SW(opt)'].total * 1e3:.3f} ms",
    )
    experiment_reports(report)

    # Orderings and magnitudes of the paper.
    assert 3.0 < t65["SW"].feature / t65["x86"].feature < 7.0
    assert 40.0 < t65["SW"].feature / t65["SW(opt)"].feature < 80.0
    assert t65["x86"].energy > t65["SW"].energy > t65["SW(opt)"].energy
    assert 0.6 < 1 - t65["SW(opt)"].energy / t65["SW"].energy < 0.9
    assert t65["x86"].total / t65["SW(opt)"].total > 8.0
    assert t65["SW"].total / t65["SW(opt)"].total > 8.0
    # x86 beats unoptimised SW overall (the paper's 17x vs 11x ordering).
    assert t65["SW"].total > t65["x86"].total
    # shorter cutoff -> cheaper everywhere
    for platform in ("x86", "SW", "SW(opt)"):
        assert results[5.8][platform].total < results[6.5][platform].total

    # Timed kernel: the real fast feature operator at the standard cutoff.
    tet = TripleEncoding(rcut=6.5)
    table = FeatureTable(tet.shell_distances)
    op = FastFeatureOperator(tet, table)
    states = np.zeros((9, tet.n_all), dtype=np.uint8)
    feats = benchmark(lambda: op(states))
    assert feats.shape[0] == 9
