"""Engine throughput matrix — the performance-regression harness.

Reports KMC events/second of this Python implementation across the
configuration axes that matter (cutoff, potential, evaluation mode, cache),
so optimisation work has a stable baseline.  Nothing here compares to the
paper directly — this is repository infrastructure.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.baseline import OpenKMCEngine
from repro.core import TensorKMCEngine, TripleEncoding
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.potentials import EAMPotential

N_STEPS = 120


def _throughput(engine) -> float:
    engine.step()  # warm the caches / first rebuilds
    t0 = time.perf_counter()
    engine.run(n_steps=N_STEPS)
    return N_STEPS / (time.perf_counter() - t0)


def _make(rcut, nnp_tiny, evaluation="full", cached=True, seed=3):
    tet = TripleEncoding(rcut=rcut)
    if nnp_tiny is not None and rcut == 2.87:
        potential = nnp_tiny
    else:
        potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState((10, 10, 10))
    lattice.randomize_alloy(np.random.default_rng(seed), 0.0134, 0.002)
    kwargs = dict(temperature=800.0, rng=np.random.default_rng(1))
    if not cached:
        return OpenKMCEngine(
            lattice, potential, tet, maintain_atom_arrays=False, **kwargs
        )
    return TensorKMCEngine(lattice, potential, tet, evaluation=evaluation, **kwargs)


def test_throughput_matrix(nnp_tiny, experiment_reports, benchmark):
    rows: Dict[str, float] = {}
    rows["EAM, rcut 2.87, full, cached"] = _throughput(_make(2.87, None))
    rows["NNP, rcut 2.87, full, cached"] = _throughput(_make(2.87, nnp_tiny))
    rows["EAM, rcut 2.87, delta, cached"] = _throughput(
        _make(2.87, None, evaluation="delta")
    )
    rows["EAM, rcut 6.5, full, cached"] = _throughput(_make(6.5, None))
    rows["EAM, rcut 6.5, delta, cached"] = _throughput(
        _make(6.5, None, evaluation="delta")
    )
    rows["EAM, rcut 2.87, full, cache-all"] = _throughput(
        _make(2.87, None, cached=False)
    )

    report = ExperimentReport(
        "Throughput", "KMC events/second (Python, one core, 10^3-cell box)"
    )
    for name, eps in rows.items():
        report.add(name, "(regression baseline)", f"{eps:,.0f} events/s")
    experiment_reports(report)

    # Structural expectations, loose enough to be timing-robust.
    assert rows["EAM, rcut 6.5, delta, cached"] > rows["EAM, rcut 6.5, full, cached"]
    assert rows["EAM, rcut 2.87, full, cached"] > rows["EAM, rcut 2.87, full, cache-all"]
    assert all(eps > 5.0 for eps in rows.values())

    engine = _make(2.87, None)
    engine.step()
    benchmark(engine.step)
