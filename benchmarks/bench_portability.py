"""Sec. 3.6 — portability of the big-fusion operator to other many-cores.

Paper claim: the data-centric design carries to other architectures; on
Fugaku the shared A64FX L2 can take the role RMA plays on the Sunway for
distributing the NNP parameters.  This bench maps the operator onto both
machine descriptions and reports that its defining property — being
compute-bound (arithmetic intensity above the ridge) — survives the port.
"""

from __future__ import annotations

from repro.constants import PAPER_CHANNELS
from repro.io.report import ExperimentReport
from repro.sunway import FUGAKU_CMG, compare_targets, sunway_target

M = 32 * 16 * 16


def test_portability_mapping(experiment_reports, benchmark):
    mapped = benchmark(lambda: compare_targets(PAPER_CHANNELS, M))

    report = ExperimentReport(
        "Sec. 3.6", "big-fusion operator mapped across many-core targets"
    )
    for name, op in mapped.items():
        report.add(
            name,
            "stays compute-bound",
            f"AI {op.arithmetic_intensity:.0f} F/B vs ridge "
            f"{op.target.ridge_point:.1f} -> "
            f"{'compute' if op.compute_bound else 'memory'}-bound, "
            f"{op.modeled_time * 1e3:.3f} ms",
        )
    report.add(
        "parameter-sharing fabric",
        "RMA on Sunway, shared L2 on Fugaku",
        f"RMA {sunway_target().share_bandwidth / 1e9:.0f} GB/s vs "
        f"L2 {FUGAKU_CMG.share_bandwidth / 1e9:.0f} GB/s",
    )
    report.add(
        "main-memory traffic",
        "architecture independent",
        f"{mapped['SW26010-pro CG'].mem_bytes / 1e6:.2f} MB on both",
    )
    experiment_reports(report)

    for op in mapped.values():
        assert op.compute_bound
    sw = mapped["SW26010-pro CG"]
    fj = mapped["Fugaku A64FX CMG"]
    assert sw.mem_bytes == fj.mem_bytes
