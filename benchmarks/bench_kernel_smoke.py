"""Kernel smoke benchmark: parallel per-event cost must not scale with N.

Runs >= 500 sublattice events at two box sizes with the same vacancy density
(4x the active-vacancy count in the large box) and compares the per-event
compute cost.  Before the shared event kernel, ``RankState.run_sector``
rebuilt the full rate-row list and a fresh cumulative sum for every hop —
O(N_active) per event — so the large box paid ~4x per event; with the
Fenwick-backed kernel the per-event cost is O(log N) and the ratio stays
near 1.  The measured numbers land in ``BENCH_kernel.json`` at the repo
root so `make bench-smoke` / `make check` surface regressions in-repo.

Runs standalone (``python benchmarks/bench_kernel_smoke.py``) and under
pytest (``pytest benchmarks/bench_kernel_smoke.py``).
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import TensorKMCEngine
from repro.core.profiling import PHASES
from repro.core.tet import TripleEncoding
from repro.lattice.occupancy import LatticeState
from repro.nnp import ElementNetworks, NNPotential
from repro.parallel.engine import SublatticeKMC
from repro.potentials.eam import EAMPotential
from repro.potentials.tables import FeatureTable

TARGET_EVENTS = 500
MAX_CYCLES = 400
VACANCY_FRACTION = 0.02
#: O(N) per event would make the 4x box ~4x slower; the kernel must stay
#: well under that (loose bound — this is a smoke test, not a microbenchmark).
MAX_RATIO = 4.0
#: Invalidate-all + refresh rounds timed per batching mode.
MISS_REPEATS = 5
#: The batched miss path must not be slower than the scalar one (the
#: acceptance target is >= 2x; 1.0 keeps the gate robust on noisy runners).
MIN_SPEEDUP = 1.0
#: For the NNP the batched path amortises the per-call overhead of the
#: deterministic tiled-GEMM kernel (fixed-tile padding and the per-launch
#: block loop), so the bar is higher than for the EAM table potential.
MIN_NNP_SPEEDUP = 1.5
#: Interleaved scalar/batched rounds for the NNP comparison (drift in a
#: shared runner hits both modes equally).
NNP_MISS_REPEATS = 5
#: Hot-path comparison: vectorized SoA event loop vs the legacy per-slot
#: scan (``EventKernel.set_hot_path("legacy")`` + always-dedup evaluation,
#: the faithful pre-SoA cost shape) at two vacancy densities.
HOT_PATH_SHAPE = (16, 16, 16)
HOT_PATH_EVENTS = 400
#: Interleaved legacy/vectorized rounds; each mode keeps its best round.
HOT_PATH_ROUNDS = 3
#: (vacancy density, speedup gate): the bench's standard density carries
#: the headline >= 1.8x acceptance target; the 2x sparser regime keeps a
#: lower floor because the batched rate evaluation — paid identically by
#: both modes — dominates per-event cost there, so the layout speedup
#: necessarily flattens towards 1 as the density drops.
HOT_PATH_GATES = ((0.02, 1.8), (0.01, 1.4))
MIN_HOT_PATH_SPEEDUP = HOT_PATH_GATES[0][1]
#: Rebuild-path comparison: incremental delta rebuild (patched VET
#: snapshots + dirty-row re-rate) vs the full re-gather/re-encode rebuild,
#: same box as the hot-path section.
REBUILD_PATH_SHAPE = (16, 16, 16)
REBUILD_PATH_EVENTS = 400
REBUILD_PATH_ROUNDS = 3
#: (vacancy density, rebuild-phase speedup gate): the headline >= 1.5x
#: target is carried by the denser regime — more stale slots per refresh
#: is exactly the workload the delta path trades re-encoding for re-rating
#: in — while the bench's standard density keeps a lower floor (with few
#: slots per batch, per-call fixed costs paid identically by both paths
#: dominate and the ratio necessarily flattens towards 1).
REBUILD_PATH_GATES = ((0.04, 1.5), (0.02, 1.1))
MIN_REBUILD_SPEEDUP = REBUILD_PATH_GATES[0][1]
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def run_box(shape, seed: int = 7) -> dict:
    """Drive one box to TARGET_EVENTS and report per-event compute cost."""
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed),
        cu_fraction=0.05,
        vacancy_fraction=VACANCY_FRACTION,
    )
    sim = SublatticeKMC(
        lattice, potential, tet,
        n_ranks=1, temperature=1200.0, t_stop=5e-7, seed=seed,
    )
    events = 0
    compute_seconds = 0.0
    cycles = 0
    while events < TARGET_EVENTS and cycles < MAX_CYCLES:
        stats = sim.cycle()
        events += stats.events
        compute_seconds += stats.compute_seconds
        cycles += 1
    summary = sim.summary()
    return {
        "shape": list(shape),
        "n_sites": int(2 * np.prod(shape)),
        "n_vacancies": int(sim.ranks[0].kernel.cache.n_live),
        "events": events,
        "cycles": cycles,
        "compute_seconds": compute_seconds,
        "per_event_us": 1e6 * compute_seconds / max(events, 1),
        "phase_us_per_event": {
            name: 1e6 * summary.get(f"{name}_seconds", 0.0) / max(events, 1)
            for name in PHASES
        },
        "hit_rate": summary["hit_rate"],
        "mean_selection_depth": (
            summary["selection_depth"] / summary["selections"]
            if summary["selections"]
            else 0.0
        ),
        "anomalies": int(summary["anomalies"]),
    }


def run_miss_mode(batching: str, shape=(12, 12, 12), seed: int = 13) -> dict:
    """Time the cache-miss rebuild path of a serial engine in one mode.

    Every timed round invalidates the whole registry and refreshes it, so
    each round rebuilds every vacancy system from scratch — the pure miss
    workload the batched big-fusion path targets (Sec. 3.4/3.5).
    """
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed),
        cu_fraction=0.05,
        vacancy_fraction=VACANCY_FRACTION,
    )
    engine = TensorKMCEngine(
        lattice, potential, tet,
        rng=np.random.default_rng(seed), batching=batching,
    )
    kernel = engine.kernel
    kernel.refresh()  # cold build outside the timed region
    # Best-of-N: the minimum round time is the noise-robust cost estimate
    # (shared runners throttle unpredictably; only slowdowns are noise).
    best = np.inf
    for _ in range(MISS_REPEATS):
        kernel.invalidate_all()
        t0 = time.perf_counter()
        kernel.refresh()
        best = min(best, time.perf_counter() - t0)
    rebuilds = kernel.cache.n_live
    summary = engine.summary()
    return {
        "batching": engine.batching,
        "n_vacancies": int(kernel.cache.n_live),
        "rebuilds": int(rebuilds),
        "seconds": best,
        "per_event_us": 1e6 * best / max(rebuilds, 1),
        "mean_batch_size": summary["mean_batch_size"],
        "max_batch_size": summary["max_batch_size"],
    }


def run_miss_path() -> dict:
    """Scalar vs batched miss-path comparison for the report."""
    scalar = run_miss_mode("scalar")
    batched = run_miss_mode("batched")
    speedup = scalar["per_event_us"] / max(batched["per_event_us"], 1e-12)
    return {
        "scalar_per_event_us": scalar["per_event_us"],
        "batched_per_event_us": batched["per_event_us"],
        "mean_batch_size": batched["mean_batch_size"],
        "max_batch_size": batched["max_batch_size"],
        "rebuilds_per_mode": scalar["rebuilds"],
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "ok": speedup >= MIN_SPEEDUP,
    }


def _nnp_engine(
    batching: str, shape, seed: int, backend=None,
    vacancy_fraction: float = VACANCY_FRACTION, layers=(16, 8), **engine_kw
) -> TensorKMCEngine:
    """A serial engine over a small randomly-initialised NNP."""
    tet = TripleEncoding(rcut=2.87)
    table = FeatureTable(tet.shell_distances)
    nets = ElementNetworks(
        (2 * table.n_dim, *layers, 1), np.random.default_rng(11)
    )
    model = NNPotential(table, nets, rcut=2.87)
    n_feat = 2 * table.n_dim
    model.set_standardisation(
        np.full(n_feat, 0.1, dtype=np.float32),
        np.full(n_feat, 2.0, dtype=np.float32),
        np.array([-4.0, -3.5]),
        0.05,
    )
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed),
        cu_fraction=0.05,
        vacancy_fraction=vacancy_fraction,
    )
    return TensorKMCEngine(
        lattice, model, tet,
        rng=np.random.default_rng(seed), batching=batching, backend=backend,
        **engine_kw,
    )


def run_nnp_miss_path(shape=(12, 12, 12), seed: int = 13) -> dict:
    """NNP cache-miss rebuilds: scalar vs batched tiled-GEMM inference.

    The deterministic tiled kernel makes the NNP ``batch_row_invariant``,
    so ``batching="auto"`` sends its misses down the batched path; this
    section measures what that buys (the amortised per-launch overhead of
    the fixed-tile kernel) and checks the bargain it rests on: the batched
    refresh must reproduce every scalar per-slot rate *bitwise*.

    Scalar and batched rounds are interleaved and each mode keeps its best
    round, so runner-load drift cannot bias the ratio.
    """
    engines = {
        mode: _nnp_engine(mode, shape, seed) for mode in ("scalar", "batched")
    }
    best = {mode: np.inf for mode in engines}
    for eng in engines.values():
        eng.kernel.refresh()  # cold build outside the timed region
    for _ in range(NNP_MISS_REPEATS):
        for mode, eng in engines.items():
            eng.kernel.invalidate_all()
            t0 = time.perf_counter()
            eng.kernel.refresh()
            best[mode] = min(best[mode], time.perf_counter() - t0)
    # Bitwise invariance: both registries hold the same vacancies, so the
    # per-slot rate vectors must agree exactly — this is the Fig. 8 cache
    # equivalence that lets the batched path replace the scalar one.
    scalar_cache = engines["scalar"].kernel.cache
    batched_cache = engines["batched"].kernel.cache
    slots = scalar_cache.live_slots()
    invariant = slots == batched_cache.live_slots() and all(
        np.array_equal(scalar_cache.get(s).rates, batched_cache.get(s).rates)
        for s in slots
    )
    rebuilds = scalar_cache.n_live
    speedup = best["scalar"] / max(best["batched"], 1e-12)
    summary = engines["batched"].summary()
    return {
        "shape": list(shape),
        "n_vacancies": int(rebuilds),
        "scalar_per_event_us": 1e6 * best["scalar"] / max(rebuilds, 1),
        "batched_per_event_us": 1e6 * best["batched"] / max(rebuilds, 1),
        "mean_batch_size": summary["mean_batch_size"],
        "max_batch_size": summary["max_batch_size"],
        "speedup": speedup,
        "min_speedup": MIN_NNP_SPEEDUP,
        "bitwise_invariant": bool(invariant),
        "ok": bool(invariant) and speedup >= MIN_NNP_SPEEDUP,
    }


def _hot_path_engine(
    mode: str, shape, vacancy_fraction: float, seed: int
) -> TensorKMCEngine:
    """A serial engine in one hot-path mode over an identical lattice."""
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed),
        cu_fraction=0.05,
        vacancy_fraction=vacancy_fraction,
    )
    engine = TensorKMCEngine(
        lattice, potential, tet, rng=np.random.default_rng(seed + 1)
    )
    if mode == "legacy":
        # Faithful pre-SoA configuration: per-slot Python refresh loops,
        # scalar Fenwick updates, spatial-hash invalidation, and the
        # always-dedup'd batch evaluation.
        engine.evaluator.dedup = "always"
        engine.kernel.set_hot_path("legacy")
    return engine


def _hot_path_round(mode: str, vacancy_fraction: float, seed: int):
    """One timed run of HOT_PATH_EVENTS events in the given mode."""
    engine = _hot_path_engine(mode, HOT_PATH_SHAPE, vacancy_fraction, seed)
    t0 = time.perf_counter()
    engine.run(n_steps=HOT_PATH_EVENTS)
    seconds = time.perf_counter() - t0
    digest = hashlib.sha256(engine.lattice.occupancy.tobytes()).hexdigest()
    return seconds, digest, engine


def run_hot_path(seed: int = 17) -> dict:
    """Vectorized SoA event loop vs the legacy per-slot scan.

    Both modes replay the same seeded trajectory (the SoA rewrite changes
    data layout, not semantics — asserted here via the final-occupancy
    digest and final clock), so the speedup is a pure like-for-like cost
    ratio.  Rounds are interleaved so runner-load drift hits both modes.
    """
    densities = []
    ok = True
    for frac, min_speedup in HOT_PATH_GATES:
        best = {"legacy": np.inf, "vectorized": np.inf}
        digests: dict = {}
        times: dict = {}
        phases: dict = {}
        for _ in range(HOT_PATH_ROUNDS):
            for mode in ("legacy", "vectorized"):
                seconds, digest, engine = _hot_path_round(mode, frac, seed)
                best[mode] = min(best[mode], seconds)
                digests[mode] = digest
                times[mode] = engine.time
                if mode == "vectorized":
                    phases = {
                        name: 1e6 * secs / HOT_PATH_EVENTS
                        for name, secs in engine.profiler.seconds.items()
                    }
        identical = (
            digests["legacy"] == digests["vectorized"]
            and times["legacy"] == times["vectorized"]
        )
        speedup = best["legacy"] / max(best["vectorized"], 1e-12)
        entry = {
            "vacancy_fraction": frac,
            "events": HOT_PATH_EVENTS,
            "legacy_per_event_us": 1e6 * best["legacy"] / HOT_PATH_EVENTS,
            "vectorized_per_event_us": (
                1e6 * best["vectorized"] / HOT_PATH_EVENTS
            ),
            "phase_us_per_event": phases,
            "speedup": speedup,
            "min_speedup": min_speedup,
            "trajectory_identical": bool(identical),
            "ok": bool(identical) and speedup >= min_speedup,
        }
        densities.append(entry)
        ok = ok and entry["ok"]
    return {
        "shape": list(HOT_PATH_SHAPE),
        "min_speedup": MIN_HOT_PATH_SPEEDUP,
        "densities": densities,
        "ok": ok,
    }


def _rebuild_path_round(mode: str, vacancy_fraction: float, seed: int):
    """One timed run of REBUILD_PATH_EVENTS events in the given mode."""
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState(REBUILD_PATH_SHAPE)
    lattice.randomize_alloy(
        np.random.default_rng(seed),
        cu_fraction=0.05,
        vacancy_fraction=vacancy_fraction,
    )
    engine = TensorKMCEngine(
        lattice, potential, tet,
        rng=np.random.default_rng(seed + 1),
        rebuild_path=mode,
    )
    t0 = time.perf_counter()
    engine.run(n_steps=REBUILD_PATH_EVENTS)
    seconds = time.perf_counter() - t0
    digest = hashlib.sha256(engine.lattice.occupancy.tobytes()).hexdigest()
    return seconds, digest, engine


def run_rebuild_path(seed: int = 29) -> dict:
    """Incremental (delta) rebuild vs the full re-gather/re-encode rebuild.

    The delta path changes *work*, not results — patched VET snapshots and
    spliced row energies are bitwise-equal to a from-scratch rebuild — so
    both modes replay the same seeded trajectory (asserted via the final
    occupancy digest and clock) and the speedup is a pure like-for-like
    cost ratio.  The gate sits on the rebuild *phase* (the work the delta
    path actually targets); total per-event cost is reported alongside.
    Rounds are interleaved so runner-load drift hits both modes.
    """
    densities = []
    ok = True
    for frac, min_speedup in REBUILD_PATH_GATES:
        best_total = {"full": np.inf, "delta": np.inf}
        best_rebuild = {"full": np.inf, "delta": np.inf}
        digests: dict = {}
        times: dict = {}
        phases: dict = {}
        for _ in range(REBUILD_PATH_ROUNDS):
            for mode in ("full", "delta"):
                seconds, digest, engine = _rebuild_path_round(
                    mode, frac, seed
                )
                rebuild = engine.profiler.seconds.get("rebuild", 0.0)
                best_total[mode] = min(best_total[mode], seconds)
                best_rebuild[mode] = min(best_rebuild[mode], rebuild)
                digests[mode] = digest
                times[mode] = engine.time
                phases[mode] = {
                    name: 1e6 * secs / REBUILD_PATH_EVENTS
                    for name, secs in engine.profiler.seconds.items()
                }
        identical = (
            digests["full"] == digests["delta"]
            and times["full"] == times["delta"]
        )
        rebuild_speedup = best_rebuild["full"] / max(
            best_rebuild["delta"], 1e-12
        )
        total_speedup = best_total["full"] / max(best_total["delta"], 1e-12)
        entry = {
            "vacancy_fraction": frac,
            "events": REBUILD_PATH_EVENTS,
            "full_per_event_us": 1e6 * best_total["full"] / REBUILD_PATH_EVENTS,
            "delta_per_event_us": (
                1e6 * best_total["delta"] / REBUILD_PATH_EVENTS
            ),
            "full_rebuild_us_per_event": (
                1e6 * best_rebuild["full"] / REBUILD_PATH_EVENTS
            ),
            "delta_rebuild_us_per_event": (
                1e6 * best_rebuild["delta"] / REBUILD_PATH_EVENTS
            ),
            "phase_us_per_event": phases,
            "rebuild_speedup": rebuild_speedup,
            "total_speedup": total_speedup,
            "min_speedup": min_speedup,
            "trajectory_identical": bool(identical),
            "ok": bool(identical) and rebuild_speedup >= min_speedup,
        }
        densities.append(entry)
        ok = ok and entry["ok"]
    return {
        "shape": list(REBUILD_PATH_SHAPE),
        "min_speedup": MIN_REBUILD_SPEEDUP,
        "densities": densities,
        "ok": ok,
    }


#: The ``row_cache`` section: NNP engine at the rebuild-heavy density.
ROW_CACHE_SHAPE = (12, 12, 12)
ROW_CACHE_EVENTS = 300
ROW_CACHE_ROUNDS = 3
ROW_CACHE_VACANCY = 0.02
#: A paper-realistic network width for this section: the cache's target is
#: the per-row GEMM stack, so the measurement uses a model whose inference
#: actually dominates the rebuild (the tiny bench-standard net spends most
#: of its rebuild in encode/counts, which the cache deliberately leaves
#: untouched and which would blur the ratio toward 1).
ROW_CACHE_LAYERS = (64, 32)
#: Gate on the rebuild phase — the work the cache removes (a hit skips the
#: whole GEMM stack of a recurring row).
MIN_ROW_CACHE_SPEEDUP = 1.4


def _row_cache_round(mode: str, seed: int):
    """One timed run of ROW_CACHE_EVENTS NNP events with the cache on/off."""
    engine = _nnp_engine(
        "auto", ROW_CACHE_SHAPE, seed,
        vacancy_fraction=ROW_CACHE_VACANCY, layers=ROW_CACHE_LAYERS,
        row_cache=mode,
    )
    t0 = time.perf_counter()
    engine.run(n_steps=ROW_CACHE_EVENTS)
    seconds = time.perf_counter() - t0
    digest = hashlib.sha256(engine.lattice.occupancy.tobytes()).hexdigest()
    return seconds, digest, engine


def run_row_cache(seed: int = 31) -> dict:
    """Persistent row-energy memoization vs fresh evaluation of every row.

    The cache changes *work*, not results: a hit returns the exact bits a
    fresh evaluation would (the ``batch_row_invariant`` contract), so both
    modes must replay the same seeded trajectory (digest + clock) and the
    speedup is a pure like-for-like cost ratio.  The gate sits on the
    rebuild phase, where the cache intercepts recurring rows before their
    GEMM stacks; every ``on`` round starts a fresh (cold) cache, so the
    measured win is within-run reuse only.  Rounds are interleaved so
    runner-load drift hits both modes.
    """
    best_total = {"off": np.inf, "on": np.inf}
    best_rebuild = {"off": np.inf, "on": np.inf}
    digests: dict = {}
    times: dict = {}
    cache_stats: dict = {}
    for _ in range(ROW_CACHE_ROUNDS):
        for mode in ("off", "on"):
            seconds, digest, engine = _row_cache_round(mode, seed)
            rebuild = engine.profiler.seconds.get("rebuild", 0.0)
            best_total[mode] = min(best_total[mode], seconds)
            best_rebuild[mode] = min(best_rebuild[mode], rebuild)
            digests[mode] = digest
            times[mode] = engine.time
            if mode == "on":
                summary = engine.summary()
                cache_stats = {
                    "hit_rate": summary["row_cache_hit_rate"],
                    "entries": summary["row_cache_entries"],
                    "resident_bytes": summary["row_cache_bytes"],
                    "evictions": summary["row_cache_evictions"],
                }
    identical = (
        digests["off"] == digests["on"] and times["off"] == times["on"]
    )
    rebuild_speedup = best_rebuild["off"] / max(best_rebuild["on"], 1e-12)
    total_speedup = best_total["off"] / max(best_total["on"], 1e-12)
    return {
        "shape": list(ROW_CACHE_SHAPE),
        "vacancy_fraction": ROW_CACHE_VACANCY,
        "events": ROW_CACHE_EVENTS,
        "off_per_event_us": 1e6 * best_total["off"] / ROW_CACHE_EVENTS,
        "on_per_event_us": 1e6 * best_total["on"] / ROW_CACHE_EVENTS,
        "off_rebuild_us_per_event": (
            1e6 * best_rebuild["off"] / ROW_CACHE_EVENTS
        ),
        "on_rebuild_us_per_event": (
            1e6 * best_rebuild["on"] / ROW_CACHE_EVENTS
        ),
        "rebuild_speedup": rebuild_speedup,
        "total_speedup": total_speedup,
        "min_speedup": MIN_ROW_CACHE_SPEEDUP,
        "cache": cache_stats,
        "trajectory_identical": bool(identical),
        "ok": bool(identical) and rebuild_speedup >= MIN_ROW_CACHE_SPEEDUP,
    }


#: Events per backend timing round in the ``backend`` report section.
BACKEND_EVENTS = 200
BACKEND_ROUNDS = 2


def run_backends(shape=(10, 10, 10), seed: int = 23) -> dict:
    """Per-event NNP engine cost per *available* array backend.

    The numpy entry is always present (it is the golden reference); a torch
    entry appears only where torch is importable, so this section is
    informational — it never makes torch a CI requirement.  Rounds are
    interleaved across backends so runner drift hits everyone equally.
    """
    from repro.core.backend import available_backends

    names = list(available_backends(probe=True))
    best = {name: np.inf for name in names}
    for _ in range(BACKEND_ROUNDS):
        for name in names:
            engine = _nnp_engine("auto", shape, seed, backend=name)
            t0 = time.perf_counter()
            engine.run(n_steps=BACKEND_EVENTS)
            best[name] = min(best[name], time.perf_counter() - t0)
    return {
        name: {
            "events": BACKEND_EVENTS,
            "seconds": best[name],
            "per_event_us": 1e6 * best[name] / BACKEND_EVENTS,
        }
        for name in names
    }


def run_smoke() -> dict:
    small = run_box((16, 8, 8))
    large = run_box((16, 16, 16))
    miss = run_miss_path()
    nnp_miss = run_nnp_miss_path()
    hot = run_hot_path()
    rebuild = run_rebuild_path()
    row_cache = run_row_cache()
    backends = run_backends()
    ratio = large["per_event_us"] / small["per_event_us"]
    report = {
        "benchmark": "kernel_smoke",
        "target_events": TARGET_EVENTS,
        "small": small,
        "large": large,
        "vacancy_scale": large["n_vacancies"] / max(small["n_vacancies"], 1),
        "per_event_ratio": ratio,
        "max_ratio": MAX_RATIO,
        "miss_path": miss,
        "nnp_miss_path": nnp_miss,
        "hot_path": hot,
        "rebuild_path": rebuild,
        "row_cache": row_cache,
        "backend": backends,
        "ok": ratio < MAX_RATIO and miss["ok"] and nnp_miss["ok"]
        and hot["ok"] and rebuild["ok"] and row_cache["ok"],
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_kernel_per_event_cost_does_not_scale_linearly():
    report = run_smoke()
    assert report["small"]["events"] >= TARGET_EVENTS
    assert report["large"]["events"] >= TARGET_EVENTS
    assert report["small"]["anomalies"] == 0
    assert report["large"]["anomalies"] == 0
    assert report["per_event_ratio"] < MAX_RATIO, report


def test_batched_miss_path_is_not_slower():
    miss = run_miss_path()
    assert miss["mean_batch_size"] > 1.0, miss
    assert miss["speedup"] >= MIN_SPEEDUP, miss


def test_nnp_batched_miss_path_is_faster_and_bitwise():
    nnp_miss = run_nnp_miss_path()
    assert nnp_miss["mean_batch_size"] > 1.0, nnp_miss
    assert nnp_miss["bitwise_invariant"], nnp_miss
    assert nnp_miss["speedup"] >= MIN_NNP_SPEEDUP, nnp_miss


def test_hot_path_is_faster_and_trajectory_identical():
    hot = run_hot_path()
    for entry in hot["densities"]:
        assert entry["trajectory_identical"], entry
        assert entry["speedup"] >= entry["min_speedup"], entry


def test_rebuild_path_is_faster_and_trajectory_identical():
    rebuild = run_rebuild_path()
    for entry in rebuild["densities"]:
        assert entry["trajectory_identical"], entry
        assert entry["rebuild_speedup"] >= entry["min_speedup"], entry


def test_row_cache_is_faster_and_trajectory_identical():
    row_cache = run_row_cache()
    assert row_cache["trajectory_identical"], row_cache
    assert row_cache["cache"]["hit_rate"] > 0.0, row_cache
    assert row_cache["rebuild_speedup"] >= row_cache["min_speedup"], row_cache


def test_backend_section_reports_numpy():
    backends = run_backends()
    assert "numpy" in backends, backends
    assert backends["numpy"]["per_event_us"] > 0.0, backends


def main() -> int:
    report = run_smoke()
    print(json.dumps(report, indent=2))
    print(
        f"per-event: {report['small']['per_event_us']:.1f} us (small) vs "
        f"{report['large']['per_event_us']:.1f} us (large, "
        f"{report['vacancy_scale']:.1f}x vacancies) -> "
        f"ratio {report['per_event_ratio']:.2f} (max {MAX_RATIO})"
    )
    miss = report["miss_path"]
    print(
        f"miss path: {miss['scalar_per_event_us']:.1f} us scalar vs "
        f"{miss['batched_per_event_us']:.1f} us batched "
        f"(mean batch {miss['mean_batch_size']:.1f}) -> "
        f"speedup {miss['speedup']:.2f}x (min {MIN_SPEEDUP})"
    )
    nnp = report["nnp_miss_path"]
    print(
        f"NNP miss path: {nnp['scalar_per_event_us']:.1f} us scalar vs "
        f"{nnp['batched_per_event_us']:.1f} us batched (tiled GEMM) -> "
        f"speedup {nnp['speedup']:.2f}x (min {MIN_NNP_SPEEDUP}), "
        f"bitwise {'OK' if nnp['bitwise_invariant'] else 'BROKEN'}"
    )
    for entry in report["hot_path"]["densities"]:
        print(
            f"hot path (vac {entry['vacancy_fraction']}): "
            f"{entry['legacy_per_event_us']:.1f} us legacy vs "
            f"{entry['vectorized_per_event_us']:.1f} us vectorized -> "
            f"speedup {entry['speedup']:.2f}x "
            f"(min {entry['min_speedup']}), trajectory "
            f"{'OK' if entry['trajectory_identical'] else 'BROKEN'}"
        )
    for entry in report["rebuild_path"]["densities"]:
        print(
            f"rebuild path (vac {entry['vacancy_fraction']}): "
            f"{entry['full_rebuild_us_per_event']:.1f} us full vs "
            f"{entry['delta_rebuild_us_per_event']:.1f} us delta rebuild -> "
            f"speedup {entry['rebuild_speedup']:.2f}x "
            f"(min {entry['min_speedup']}, total "
            f"{entry['total_speedup']:.2f}x), trajectory "
            f"{'OK' if entry['trajectory_identical'] else 'BROKEN'}"
        )
    rc = report["row_cache"]
    print(
        f"row cache (vac {rc['vacancy_fraction']}): "
        f"{rc['off_rebuild_us_per_event']:.1f} us off vs "
        f"{rc['on_rebuild_us_per_event']:.1f} us on rebuild -> "
        f"speedup {rc['rebuild_speedup']:.2f}x "
        f"(min {rc['min_speedup']}, total {rc['total_speedup']:.2f}x, "
        f"hit rate {rc['cache'].get('hit_rate', 0.0):.3f}), trajectory "
        f"{'OK' if rc['trajectory_identical'] else 'BROKEN'}"
    )
    for name, entry in report["backend"].items():
        print(f"backend {name}: {entry['per_event_us']:.1f} us/event")
    if not report["ok"]:
        if report["per_event_ratio"] >= MAX_RATIO:
            print("FAIL: per-event cost scales with the active-vacancy count")
        if not miss["ok"]:
            print("FAIL: batched miss path is slower than the scalar one")
        if not nnp["ok"]:
            print(
                "FAIL: NNP batched miss path misses its speedup gate or is "
                "not bitwise-invariant"
            )
        if not report["hot_path"]["ok"]:
            print(
                "FAIL: vectorized hot path misses its speedup gate or "
                "changed the trajectory"
            )
        if not report["rebuild_path"]["ok"]:
            print(
                "FAIL: delta rebuild path misses its rebuild-phase speedup "
                "gate or changed the trajectory"
            )
        if not rc["ok"]:
            print(
                "FAIL: row-energy cache misses its rebuild-phase speedup "
                "gate or changed the trajectory"
            )
        return 1
    print(f"OK — report written to {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
