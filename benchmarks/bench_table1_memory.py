"""Table 1 — memory statistics: OpenKMC vs TensorKMC.

Paper (per simulation box of 2 / 16 / 54 / 128 million atoms, MB):

* OpenKMC holds per-atom arrays T, POS_ID, E_V, E_R, all linear in the
  domain; it cannot hold 128 M atoms in one process;
* TensorKMC's VAC-cache is tiny (0.09 - 6 MB) because it scales with the
  dilute vacancy count, and the runtime footprint is ~1/3 of OpenKMC's
  (per-atom cost 0.70 kB -> 0.10 kB, Sec. 4.4.1).

Our byte counts describe the arrays this repository actually allocates
(validated against live engines in the test-suite) and are extrapolated
linearly to the paper's box sizes.
"""

from __future__ import annotations

import numpy as np

from repro.baseline import (
    MB,
    format_table,
    openkmc_memory_model,
    tensorkmc_memory_model,
)
from repro.core.tet import TripleEncoding
from repro.io.report import ExperimentReport
from repro.potentials import FeatureTable

PAPER_SIZES_M = (2, 16, 54, 128)
#: Paper Table 1 rows (MB) for cross-reference in the printed report.
PAPER_OPENKMC_TOTAL_ARRAYS = {2: 238, 16: 1803, 54: 5983, 128: 14051}
PAPER_VAC_CACHE = {2: 0.09, 16: 1.50, 54: 2.53, 128: 6.00}


def test_table1_memory(experiment_reports, benchmark):
    tet = TripleEncoding(rcut=6.5)
    table = FeatureTable(tet.shell_distances)

    def build_models():
        rows = {}
        for m_atoms in PAPER_SIZES_M:
            n_sites = m_atoms * 1_000_000
            n_vac = max(int(8e-6 * n_sites), 1)
            rows[f"OpenKMC {m_atoms}M"] = openkmc_memory_model(n_sites, mode="eam")
            # Table 1 mirrors the paper's cache entry (no incremental-rebuild
            # snapshots); the delta-path surcharge is reported separately.
            rows[f"TensorKMC {m_atoms}M"] = tensorkmc_memory_model(
                n_sites, n_vac, tet, table, delta_snapshots=False
            )
        return rows

    rows = benchmark(build_models)

    report = ExperimentReport("Table 1", "memory statistics (MB per process)")
    for m_atoms in PAPER_SIZES_M:
        open_total = rows[f"OpenKMC {m_atoms}M"]["total"] / MB
        tensor_total = rows[f"TensorKMC {m_atoms}M"]["total"] / MB
        report.add(
            f"{m_atoms}M atoms: array totals",
            f"OpenKMC {PAPER_OPENKMC_TOTAL_ARRAYS[m_atoms]} MB (T+POS_ID+E_V+E_R)",
            f"OpenKMC {open_total:.0f} MB vs TensorKMC {tensor_total:.0f} MB",
            "C++ structs are wider than ours",
        )
        report.add(
            f"{m_atoms}M atoms: VAC cache",
            f"{PAPER_VAC_CACHE[m_atoms]:.2f} MB",
            f"{rows[f'TensorKMC {m_atoms}M']['VAC_cache'] / MB:.2f} MB",
        )
    ratio = rows["TensorKMC 54M"]["total"] / rows["OpenKMC 54M"]["total"]
    report.add("TensorKMC / OpenKMC memory", "~1/3 (runtime)", f"{ratio:.2f} (arrays)")
    n_vac_128 = max(int(8e-6 * 128_000_000), 1)
    with_delta = tensorkmc_memory_model(
        128_000_000, n_vac_128, tet, table, delta_snapshots=True
    )
    report.add(
        "128M VAC cache with delta snapshots",
        "n/a (this repo's incremental rebuild path)",
        f"{with_delta['VAC_cache'] / MB:.2f} MB "
        f"(vs {rows['TensorKMC 128M']['VAC_cache'] / MB:.2f} MB base)",
        "still O(n_vacancies), dwarfed by the lattice array",
    )
    experiment_reports(report)

    # Shape assertions.
    for m_atoms in PAPER_SIZES_M:
        open_row = rows[f"OpenKMC {m_atoms}M"]
        tensor_row = rows[f"TensorKMC {m_atoms}M"]
        # TensorKMC is far smaller, and its cache is megabytes at most.
        assert tensor_row["total"] < 0.34 * open_row["total"]
        assert tensor_row["VAC_cache"] / MB < 20.0
    # Linear growth of OpenKMC arrays; cache grows only with vacancies.
    assert rows["OpenKMC 128M"]["total"] == 64 * rows["OpenKMC 2M"]["total"]
    vac_ratio = rows["TensorKMC 128M"]["VAC_cache"] / rows["TensorKMC 2M"]["VAC_cache"]
    assert vac_ratio == 64.0  # vacancies scale with atoms at fixed concentration

    # Printable full table for the record.
    print()
    print(format_table(rows))
