"""Fig. 13 — weak scaling up to 54.067 trillion atoms (27,456,000 cores).

Paper: 128 M atoms per CG, excellent weak scaling from 12,000 up to 422,400
CGs; the largest system (54.067 T atoms) is two orders of magnitude beyond
OpenKMC's reach.

Real multi-rank runs at several rank counts verify that per-rank work stays
flat when the per-rank system is fixed (the actual weak-scaling property of
the implementation); the protocol model extrapolates to the paper's CG
counts.
"""

from __future__ import annotations

import numpy as np

from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.parallel import SublatticeKMC, parallel_efficiency, weak_scaling
from benchmarks.bench_fig12_strong_scaling import calibrate, paper_parameters

PAPER_CG_COUNTS = [12000, 24000, 48000, 96000, 192000, 384000, 422400]


def _events_per_rank(n_ranks, rank_cells, tet, potential, seed=11):
    """Fixed per-rank box, growing rank count: measured events per rank."""
    grid = (n_ranks, 1, 1)
    shape = (rank_cells * n_ranks, rank_cells, rank_cells)
    lattice = LatticeState(shape)
    lattice.randomize_alloy(np.random.default_rng(seed), 0.0134, 0.004)
    sim = SublatticeKMC(
        lattice, potential, tet, n_ranks=n_ranks, grid=grid,
        temperature=900.0, t_stop=2e-10, seed=seed,
    )
    sim.run(8)
    return sim.total_events / n_ranks


def test_fig13_weak_scaling(tet_small, nnp_tiny, experiment_reports, benchmark):
    # Real-weak-scaling check at laptop scale: per-rank event load is flat.
    per_rank = [
        _events_per_rank(n, 8, tet_small, nnp_tiny) for n in (1, 2, 3)
    ]
    mean = float(np.mean(per_rank))
    assert mean > 0
    assert max(abs(p - mean) for p in per_rank) < 0.8 * mean + 2.0

    _, bytes_per_cell = calibrate(tet_small, nnp_tiny)
    params = paper_parameters(2.0e-4, bytes_per_cell)
    points = weak_scaling(params, atoms_per_cg=128e6, cg_counts=PAPER_CG_COUNTS)
    eff = parallel_efficiency(points, weak=True)

    report = ExperimentReport(
        "Fig. 13", "weak scaling, 128M atoms/CG (calibrated protocol model)"
    )
    for p, e in zip(points, eff):
        note = ""
        if p.n_cores == 27_456_000:
            note = "the 54.067T-atom headline run"
        report.add(
            f"{p.n_cores:,} cores",
            "(bar)",
            f"{p.atoms_total / 1e12:.3f}T atoms, cycle "
            f"{p.cycle_time * 1e3:.2f} ms, efficiency {e * 100:.1f}%",
            note,
        )
    report.add(
        "per-rank events at 1/2/3 ranks (real runs)",
        "flat",
        " / ".join(f"{p:.1f}" for p in per_rank),
    )
    experiment_reports(report)

    assert points[-1].atoms_total == 54.0672e12  # 422,400 * 128e6
    assert points[-1].n_cores == 27_456_000
    assert min(eff) > 0.9

    # Timed kernel: weak-scaling model evaluation across all CG counts.
    benchmark(
        lambda: weak_scaling(params, atoms_per_cg=128e6, cg_counts=PAPER_CG_COUNTS)
    )
