"""Ablation — synchronisation interval t_stop sweep.

The paper fixes a deliberately strict t_stop = 2e-8 s in all scalability
tests and notes that practical runs can raise it to cut communication
(Sec. 4.4).  This bench sweeps t_stop on a real multi-rank run and reports
the trade: larger intervals execute more events per ghost exchange (less
communication per event) at the cost of a longer desynchronised window.
"""

from __future__ import annotations

import numpy as np

from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.parallel import SublatticeKMC

SWEEP = (5e-11, 2e-10, 8e-10)
N_CYCLES = 16


def _run(t_stop, tet, potential, seed=13):
    lattice = LatticeState((16, 12, 12))
    lattice.randomize_alloy(np.random.default_rng(seed), 0.0134, 0.004)
    sim = SublatticeKMC(
        lattice, potential, tet, n_ranks=2, temperature=900.0,
        t_stop=t_stop, seed=seed,
    )
    sim.run(N_CYCLES)
    events = max(sim.total_events, 1)
    return {
        "events": sim.total_events,
        "rejected": sum(c.rejected for c in sim.cycles),
        "messages_per_event": sim.world.stats.messages_sent / events,
        "bytes_per_event": sim.world.stats.bytes_sent / events,
    }


def test_ablation_tstop(tet_small, nnp_tiny, experiment_reports, benchmark):
    results = {t: _run(t, tet_small, nnp_tiny) for t in SWEEP}

    report = ExperimentReport(
        "Ablation: t_stop sweep", "sync interval vs communication per event"
    )
    for t, r in results.items():
        report.add(
            f"t_stop = {t:.0e} s",
            "larger -> less comm/event",
            f"{r['events']} events, {r['rejected']} rejected, "
            f"{r['messages_per_event']:.1f} msgs/event",
        )
    experiment_reports(report)

    # More simulated time per cycle -> more events for the same cycle count.
    events = [results[t]["events"] for t in SWEEP]
    assert events[0] < events[-1]
    # And strictly less communication per executed event.
    msgs = [results[t]["messages_per_event"] for t in SWEEP]
    assert msgs[-1] < msgs[0]

    benchmark(lambda: _run(SWEEP[1], tet_small, nnp_tiny))
