"""Model-class comparison — AKMC vs OKMC vs EKMC on one defect workload.

The paper's introduction positions AKMC between microkinetic/OKMC models
(fast, coarse) and on-the-fly ab initio KMC (accurate, slow).  This bench
makes that trade measurable: the same vacancy population evolves under the
atomistic engine and under the object model, and the report compares their
clustering outcome and their cost per event.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import cluster_sizes, find_clusters
from repro.constants import VACANCY
from repro.core import TensorKMCEngine
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.okmc import EKMCModel, OKMCModel, OKMCParameters

N_VACANCIES = 40
BOX_CELLS = 16
TEMPERATURE = 800.0
N_STEPS = 3000


def test_model_class_comparison(tet_small, eam_small, experiment_reports, benchmark):
    # --- AKMC -----------------------------------------------------------
    lattice = LatticeState((BOX_CELLS,) * 3)
    rng = np.random.default_rng(0)
    ids = rng.choice(lattice.n_sites, N_VACANCIES, replace=False)
    lattice.occupancy[ids] = VACANCY
    akmc = TensorKMCEngine(
        lattice, eam_small, tet_small, temperature=TEMPERATURE,
        rng=np.random.default_rng(9),
    )
    t0 = time.perf_counter()
    akmc.run(n_steps=N_STEPS)
    akmc_wall = time.perf_counter() - t0
    akmc_sizes = cluster_sizes(find_clusters(lattice, species=VACANCY))

    # --- OKMC -----------------------------------------------------------
    okmc = OKMCModel.random_monovacancies(
        N_VACANCIES, np.array([BOX_CELLS * 2.87] * 3),
        OKMCParameters(temperature=TEMPERATURE), np.random.default_rng(1),
    )
    t0 = time.perf_counter()
    okmc.run(N_STEPS)
    okmc_wall = time.perf_counter() - t0
    okmc_sizes = okmc.cluster_sizes()

    # --- EKMC -----------------------------------------------------------
    ekmc = EKMCModel(
        sizes=[1] * N_VACANCIES, volume=(BOX_CELLS * 2.87) ** 3,
        params=OKMCParameters(temperature=TEMPERATURE),
        rng=np.random.default_rng(2),
    )
    t0 = time.perf_counter()
    ekmc.run(N_STEPS)
    ekmc_wall = time.perf_counter() - t0
    ekmc_sizes = ekmc.cluster_sizes()

    report = ExperimentReport(
        "Model classes", "AKMC vs OKMC vs EKMC, 40 vacancies aging at 800 K"
    )
    report.add(
        "AKMC (atomistic)",
        "atomic resolution, expensive",
        f"{len(akmc_sizes)} clusters, largest {akmc_sizes[0]}, "
        f"t_sim {akmc.time:.2e} s, {N_STEPS / akmc_wall:,.0f} events/s",
    )
    report.add(
        "OKMC (object)",
        "coarse, cheap (paper Sec. 1 taxonomy)",
        f"{len(okmc_sizes)} clusters, largest {okmc_sizes[0]}, "
        f"t_sim {okmc.time:.2e} s, {N_STEPS / okmc_wall:,.0f} events/s",
    )
    report.add(
        "EKMC (event)",
        "coarsest: well-mixed encounter events",
        f"{len(ekmc_sizes)} clusters, largest {ekmc_sizes[0]}, "
        f"t_sim {ekmc.time:.2e} s, {ekmc.step_count / max(ekmc_wall, 1e-9):,.0f} events/s",
    )
    report.add(
        "events/s ratio OKMC : AKMC",
        ">> 1 (why OKMC reaches mesoscale first)",
        f"{akmc_wall / okmc_wall:,.0f}x",
    )
    experiment_reports(report)

    # Same qualitative physics from all three model classes.
    assert akmc_sizes[0] >= 4 and okmc_sizes[0] >= 4 and ekmc_sizes[0] >= 4
    assert len(akmc_sizes) < N_VACANCIES and len(okmc_sizes) < N_VACANCIES
    assert len(ekmc_sizes) < N_VACANCIES
    # The object model is far cheaper per event — the paper's motivation for
    # bringing atomistic resolution to mesoscale via supercomputing instead.
    assert okmc_wall < akmc_wall

    fresh = OKMCModel.random_monovacancies(
        N_VACANCIES, np.array([BOX_CELLS * 2.87] * 3),
        OKMCParameters(temperature=TEMPERATURE), np.random.default_rng(2),
    )
    benchmark(fresh.step)
