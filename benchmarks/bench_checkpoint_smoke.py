"""Checkpoint smoke benchmark: save/load cost and bit-exact resume.

Times one parallel checkpoint save and load on a 4-rank sublattice world and
asserts the restored world continues bit-identically to the uninterrupted
run — the invariant that makes rollback-and-replay recovery sound.  A
checkpoint that takes a noticeable fraction of a cycle would change the
``checkpoint_every`` economics of the resilient driver, so the measured
cost relative to one cycle lands in ``BENCH_checkpoint.json`` at the repo
root for ``make fault-suite`` to surface.

Runs standalone (``python benchmarks/bench_checkpoint_smoke.py``) and under
pytest (``pytest benchmarks/bench_checkpoint_smoke.py``).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.tet import TripleEncoding
from repro.io.checkpoint import load_parallel_checkpoint, save_parallel_checkpoint
from repro.lattice.occupancy import LatticeState
from repro.parallel.engine import SublatticeKMC
from repro.potentials.eam import EAMPotential

N_RANKS = 4
WARMUP_CYCLES = 6
RESUME_CYCLES = 6
REPEATS = 3
#: A cycle-boundary checkpoint must stay cheap next to the cycle it guards
#: (loose smoke bound; shared runners throttle unpredictably).
MAX_SAVE_PER_CYCLE = 10.0
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_checkpoint.json"


def _sim(seed: int = 7) -> SublatticeKMC:
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)
    lattice = LatticeState((16, 16, 16))
    lattice.randomize_alloy(
        np.random.default_rng(seed), cu_fraction=0.05, vacancy_fraction=0.01
    )
    return SublatticeKMC(
        lattice, potential, tet,
        n_ranks=N_RANKS, temperature=1200.0, t_stop=5e-8, seed=seed,
    )


def run_smoke() -> dict:
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances)

    reference = _sim()
    reference.run(WARMUP_CYCLES + RESUME_CYCLES)

    sim = _sim()
    t0 = time.perf_counter()
    sim.run(WARMUP_CYCLES)
    cycle_seconds = (time.perf_counter() - t0) / WARMUP_CYCLES

    save_best = load_best = np.inf
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "ck.npz")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            save_parallel_checkpoint(path, sim)
            save_best = min(save_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            resumed = load_parallel_checkpoint(path, potential, tet=tet)
            load_best = min(load_best, time.perf_counter() - t0)
        archive_bytes = Path(path).stat().st_size
        resumed.run(RESUME_CYCLES)

    bit_exact = bool(
        np.array_equal(
            resumed.gather_global().occupancy,
            reference.gather_global().occupancy,
        )
        and resumed.time == reference.time
        and [c.events for c in resumed.cycles]
        == [c.events for c in reference.cycles]
    )
    save_per_cycle = save_best / max(cycle_seconds, 1e-12)
    report = {
        "benchmark": "checkpoint_smoke",
        "n_ranks": N_RANKS,
        "cycles_before_save": WARMUP_CYCLES,
        "cycles_after_load": RESUME_CYCLES,
        "archive_bytes": int(archive_bytes),
        "cycle_seconds": cycle_seconds,
        "save_seconds": save_best,
        "load_seconds": load_best,
        "save_per_cycle": save_per_cycle,
        "max_save_per_cycle": MAX_SAVE_PER_CYCLE,
        "bit_exact_resume": bit_exact,
        "ok": bit_exact and save_per_cycle < MAX_SAVE_PER_CYCLE,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_checkpoint_roundtrip_is_bit_exact_and_cheap():
    report = run_smoke()
    assert report["bit_exact_resume"], report
    assert report["save_per_cycle"] < MAX_SAVE_PER_CYCLE, report


def main() -> int:
    report = run_smoke()
    print(json.dumps(report, indent=2))
    print(
        f"save {report['save_seconds'] * 1e3:.1f} ms / "
        f"load {report['load_seconds'] * 1e3:.1f} ms / "
        f"cycle {report['cycle_seconds'] * 1e3:.1f} ms -> "
        f"save cost {report['save_per_cycle']:.2f} cycles "
        f"(max {MAX_SAVE_PER_CYCLE}); archive {report['archive_bytes']} B"
    )
    if not report["ok"]:
        if not report["bit_exact_resume"]:
            print("FAIL: resumed trajectory diverged from the reference")
        else:
            print("FAIL: checkpoint save is too expensive per cycle")
        return 1
    print(f"OK — report written to {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
