"""NNP fidelity — does the fitted potential preserve the KMC kinetics?

The paper's premise is that an NNP trained to meV/atom accuracy can replace
its reference PES inside AKMC without changing the physics.  This bench
tests that premise directly on our stack: an NNP is trained against the EAM
oracle, then the *same* alloy is aged under both potentials and the kinetic
observables (isolated-Cu trend, Warren-Cowley ordering, event rate) are
compared.  Trajectories cannot match event-for-event — a few meV shift
reorders individual rates — so the comparison is statistical.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyse_precipitation, warren_cowley
from repro.constants import VACANCY
from repro.core import TensorKMCEngine, TripleEncoding
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.nnp import (
    ElementNetworks,
    NNPotential,
    NNPTrainer,
    generate_structures,
    parity_report,
    train_test_split,
)
from repro.potentials import EAMParameters, EAMPotential, FeatureTable

RCUT = 2.87
BOX = (12, 12, 12)
N_STEPS = 4000
TEMPERATURE = 600.0


def _train_nnp(tet, oracle):
    rng = np.random.default_rng(17)
    structures = generate_structures(
        oracle, rng, n_structures=80, cells=(3, 3, 3)
    )
    train, test = train_test_split(structures, rng, n_train=64)
    table = FeatureTable(tet.shell_distances)
    nets = ElementNetworks((2 * table.n_dim, 32, 32, 1), rng)
    model = NNPotential(table, nets, rcut=RCUT)
    trainer = NNPTrainer(model, train)
    trainer.train(rng, n_epochs=150, lr=3e-3, lr_decay=0.995)
    ev = trainer.evaluate_energies(test)
    return model, parity_report(ev["predicted"], ev["reference"])


def _age(potential, tet, seed=12):
    lattice = LatticeState(BOX)
    rng = np.random.default_rng(seed)
    lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=0.0)
    ids = rng.choice(lattice.n_sites, 6, replace=False)
    lattice.occupancy[ids] = VACANCY
    engine = TensorKMCEngine(
        lattice, potential, tet, temperature=TEMPERATURE,
        rng=np.random.default_rng(1),
    )
    engine.run(n_steps=N_STEPS)
    stats = analyse_precipitation(lattice, engine.time)
    alpha = warren_cowley(lattice, rcut=RCUT).get(0, 0.0)
    return {
        "isolated": stats.isolated,
        "max_size": stats.max_size,
        "alpha": alpha,
        "time": engine.time,
    }


def test_nnp_fidelity(experiment_reports, benchmark):
    tet = TripleEncoding(rcut=RCUT)
    # The oracle must share the NNP's interaction range, otherwise the
    # regression problem is ill-posed (the descriptor cannot see what the
    # reference PES computes).
    oracle = EAMPotential(
        tet.shell_distances, EAMParameters(rcut=RCUT + 1e-6)
    )
    model, parity = _train_nnp(tet, oracle)

    ref = _age(oracle, tet)
    nnp = _age(model, tet)

    report = ExperimentReport(
        "NNP fidelity", "same alloy aged under the oracle PES vs the fitted NNP"
    )
    report.add(
        "NNP test accuracy", "meV/atom regime",
        f"MAE {parity['mae'] * 1e3:.1f} meV/atom, R^2 {parity['r2']:.4f}",
    )
    report.add(
        "isolated Cu after aging",
        "same trend under both PES",
        f"oracle {ref['isolated']} vs NNP {nnp['isolated']}",
        f"start 60, {N_STEPS} events",
    )
    report.add(
        "Warren-Cowley alpha(1NN)",
        "same ordering state",
        f"oracle {ref['alpha']:+.4f} vs NNP {nnp['alpha']:+.4f}",
    )
    report.add(
        "simulated time",
        "same order (rates agree)",
        f"oracle {ref['time']:.2e} s vs NNP {nnp['time']:.2e} s",
    )
    experiment_reports(report)

    # The fitted PES preserves the reference kinetics.
    assert abs(nnp["alpha"] - ref["alpha"]) < 0.02
    assert abs(nnp["isolated"] - ref["isolated"]) <= 10
    # Event rates agree closely (sub-meV barriers -> near-identical clocks).
    ratio = nnp["time"] / ref["time"]
    assert 0.5 < ratio < 2.0

    benchmark(lambda: model.energies_from_counts(
        np.zeros(64, dtype=np.int64),
        np.ones((64, tet.n_shells, 2), dtype=np.float32),
    ))
