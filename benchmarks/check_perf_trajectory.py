"""Diff fresh benchmark reports against their committed baselines.

``make bench-smoke`` rewrites ``BENCH_kernel.json`` (and ``make
campaign-suite`` rewrites ``BENCH_campaign.json``) with the timings of the
current tree; this script compares the fresh numbers against the committed
copies (``git show HEAD:<report>`` by default) and fails when any tracked
per-event time regressed by more than the tolerance.  It gives the perf
trajectory of the repo a memory: a PR that slows the hot path down fails CI
even though every correctness test still passes.

Only slowdowns fail; speedups simply become the new baseline once the
refreshed report is committed.  Metrics absent from the baseline (older
reports predate the phase breakdown) are skipped, so the gate tightens
as the report grows without ever breaking on history.

Usage::

    python benchmarks/check_perf_trajectory.py \
        [--fresh BENCH_kernel.json] [--baseline git:HEAD | path.json] \
        [--tolerance 0.10]

No ``repro`` imports — the script must run anywhere a checkout and the two
JSON reports exist.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_FRESH = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_TOLERANCE = float(os.environ.get("PERF_TOLERANCE", "0.10"))
#: Timings below this are timer noise, not signal; they never gate.
MIN_US = 5.0


def _dig(report: dict, path: str):
    """Fetch a dotted path (list indices allowed) or None when absent."""
    node = report
    for part in path.split("."):
        if isinstance(node, list):
            try:
                node = node[int(part)]
            except (IndexError, ValueError):
                return None
        elif isinstance(node, dict):
            if part not in node:
                return None
            node = node[part]
        else:
            return None
    return node


def tracked_metrics(report: dict) -> list:
    """Dotted paths of every per-event time the trajectory gate watches."""
    metrics = [
        "small.per_event_us",
        "large.per_event_us",
        "miss_path.batched_per_event_us",
        "nnp_miss_path.batched_per_event_us",
    ]
    for box in ("small", "large"):
        phases = _dig(report, f"{box}.phase_us_per_event")
        if isinstance(phases, dict):
            metrics.extend(f"{box}.phase_us_per_event.{p}" for p in phases)
    densities = _dig(report, "hot_path.densities")
    if isinstance(densities, list):
        for i, entry in enumerate(densities):
            metrics.append(f"hot_path.densities.{i}.vectorized_per_event_us")
            phases = entry.get("phase_us_per_event", {})
            metrics.extend(
                f"hot_path.densities.{i}.phase_us_per_event.{p}"
                for p in phases
            )
    densities = _dig(report, "rebuild_path.densities")
    if isinstance(densities, list):
        for i, entry in enumerate(densities):
            metrics.append(
                f"rebuild_path.densities.{i}.delta_per_event_us"
            )
            metrics.append(
                f"rebuild_path.densities.{i}.delta_rebuild_us_per_event"
            )
            phases = entry.get("phase_us_per_event", {})
            if isinstance(phases.get("delta"), dict):
                metrics.extend(
                    f"rebuild_path.densities.{i}.phase_us_per_event.delta.{p}"
                    for p in phases["delta"]
                )
    # The cached miss path: total and rebuild-phase per-event cost with the
    # persistent row-energy cache on (absent from pre-cache baselines, so
    # the predates-the-baseline skip in compare() keeps history green).
    if _dig(report, "row_cache") is not None:
        metrics.append("row_cache.on_per_event_us")
        metrics.append("row_cache.on_rebuild_us_per_event")
    # Per-backend per-event cost (the numpy entry is always present; torch
    # appears only where torch is importable, and the predates-the-baseline
    # skip in compare() keeps mixed environments green).
    backends = _dig(report, "backend")
    if isinstance(backends, dict):
        metrics.extend(
            f"backend.{name}.per_event_us" for name in sorted(backends)
        )
    return metrics


def campaign_metrics(report: dict) -> list:
    """Tracked per-event times of the campaign smoke benchmark."""
    metrics = ["sequential_us_per_event", "shared_us_per_event"]
    if _dig(report, "row_cache") is not None:
        metrics.append("row_cache.cached_us_per_event")
    return metrics


def parallel_metrics(report: dict) -> list:
    """Tracked per-event times of the parallel executor smoke benchmark."""
    metrics = []
    for key in sorted(report):
        if key.startswith("ranks") and isinstance(report[key], dict):
            metrics.append(f"{key}.inline_us_per_event")
            metrics.append(f"{key}.process_us_per_event")
    return metrics


#: Every report the trajectory gate watches: (filename, metrics function).
#: The speedup/ratio gates live in each report's own ``ok`` flag (checked
#: by CI's perf-gate step); this script only watches absolute times.
REPORTS = (
    ("BENCH_kernel.json", tracked_metrics),
    ("BENCH_campaign.json", campaign_metrics),
    ("BENCH_parallel.json", parallel_metrics),
)


def load_baseline(spec: str, filename: str = "BENCH_kernel.json") -> dict:
    """Load a baseline report from a path or a ``git:REF`` spec.

    ``git:REF`` resolves ``filename`` at that ref; a filesystem path names
    the kernel report directly and sibling reports are read from the same
    directory under their canonical names.
    """
    if spec.startswith("git:"):
        ref = spec[len("git:"):]
        blob = subprocess.run(
            ["git", "show", f"{ref}:{filename}"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
        return json.loads(blob)
    path = Path(spec)
    if path.name != filename:
        path = path.parent / filename
    return json.loads(path.read_text())


def compare(fresh: dict, baseline: dict, tolerance: float,
            metrics_fn=tracked_metrics) -> list:
    """Regressions as (metric, baseline_us, fresh_us, ratio) tuples."""
    regressions = []
    for metric in metrics_fn(fresh):
        base = _dig(baseline, metric)
        new = _dig(fresh, metric)
        if base is None or new is None:
            continue  # metric predates the baseline (or was dropped)
        base = float(base)
        new = float(new)
        if base < MIN_US or new < MIN_US:
            continue
        ratio = new / base
        if ratio > 1.0 + tolerance:
            regressions.append((metric, base, new, ratio))
    return regressions


def check_report(filename: str, metrics_fn, fresh_path: Path,
                 baseline_spec: str, tolerance: float) -> int:
    """Diff one report against its baseline; 0 = OK or skipped, 1 = FAIL.

    The gate must never block a tree that simply has no numbers to compare:
    a missing or unreadable report on either side is a warning, not a
    failure (regressions can only be judged against a real baseline).
    """
    try:
        fresh = json.loads(fresh_path.read_text())
    except FileNotFoundError:
        print(
            f"perf-trajectory: no fresh report at {fresh_path} "
            "(run the matching benchmark first); skipping"
        )
        return 0
    except json.JSONDecodeError as exc:
        print(f"perf-trajectory: fresh report {fresh_path} is not valid JSON "
              f"({exc}); skipping")
        return 0
    try:
        baseline = load_baseline(baseline_spec, filename)
    except (subprocess.CalledProcessError, FileNotFoundError):
        print(f"perf-trajectory: no baseline for {filename} at "
              f"{baseline_spec}; skipping")
        return 0
    except json.JSONDecodeError as exc:
        print(f"perf-trajectory: baseline {baseline_spec} ({filename}) is "
              f"not valid JSON ({exc}); skipping")
        return 0

    checked = [
        m for m in metrics_fn(fresh)
        if _dig(baseline, m) is not None and _dig(fresh, m) is not None
    ]
    regressions = compare(fresh, baseline, tolerance, metrics_fn)
    print(
        f"perf-trajectory: {filename}: {len(checked)} metrics vs "
        f"{baseline_spec} (tolerance {tolerance:.0%})"
    )
    for metric, base, new, ratio in regressions:
        print(
            f"  REGRESSION {metric}: {base:.1f} us -> {new:.1f} us "
            f"({ratio:.2f}x)"
        )
    if regressions:
        print(f"perf-trajectory: {filename}: FAIL")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default=str(DEFAULT_FRESH),
                        help="freshly generated kernel report (default: repo "
                             "root; sibling reports are read from the same "
                             "directory)")
    parser.add_argument("--baseline", default="git:HEAD",
                        help="committed reports: a path or git:REF")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown fraction (env PERF_TOLERANCE)")
    args = parser.parse_args(argv)

    fresh_dir = Path(args.fresh).parent
    failed = 0
    for filename, metrics_fn in REPORTS:
        fresh_path = (
            Path(args.fresh) if filename == "BENCH_kernel.json"
            else fresh_dir / filename
        )
        failed += check_report(
            filename, metrics_fn, fresh_path, args.baseline, args.tolerance
        )
    if failed:
        print("perf-trajectory: FAIL")
        return 1
    print("perf-trajectory: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
