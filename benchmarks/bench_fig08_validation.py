"""Fig. 8 — triple-encoding + vacancy cache vs the cache-all baseline.

Paper: the isolated-Cu-count trajectory of TensorKMC (triple encoding +
vacancy cache) is *identical* to the baseline's; both curves coincide.

We run both engines from the same seed on the same alloy (scaled down from
the paper's 100^3 a^3 box to keep the single-core runtime in seconds) and
assert bit-identical trajectories, then report the cache ablation: hit rate
and per-step speedup of the vacancy cache.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import analyse_precipitation
from repro.baseline import OpenKMCEngine
from repro.core import TensorKMCEngine
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState

N_STEPS = 150
BOX = (12, 12, 12)


def _alloy(seed=101):
    lattice = LatticeState(BOX)
    lattice.randomize_alloy(
        np.random.default_rng(seed), cu_fraction=0.0134, vacancy_fraction=0.002
    )
    return lattice


def _isolated_series(engine, n_steps, stride=25):
    series = [analyse_precipitation(engine.lattice, engine.time).isolated]
    for step in range(n_steps):
        engine.step()
        if (step + 1) % stride == 0:
            series.append(analyse_precipitation(engine.lattice, engine.time).isolated)
    return series


def test_fig08_identical_trajectories(nnp_tiny, tet_small, experiment_reports, benchmark):
    lat_tensor = _alloy()
    lat_open = lat_tensor.copy()

    tensor = TensorKMCEngine(
        lat_tensor, nnp_tiny, tet_small, temperature=800.0,
        rng=np.random.default_rng(9),
    )
    openkmc = OpenKMCEngine(
        lat_open, nnp_tiny, tet_small, temperature=800.0,
        rng=np.random.default_rng(9), maintain_atom_arrays=False,
    )

    t0 = time.perf_counter()
    series_tensor = _isolated_series(tensor, N_STEPS)
    tensor_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    series_open = _isolated_series(openkmc, N_STEPS)
    open_seconds = time.perf_counter() - t0

    identical = series_tensor == series_open and np.array_equal(
        lat_tensor.occupancy, lat_open.occupancy
    )
    assert identical
    assert tensor.time == openkmc.time

    # One set of counters for every driver: the engine's kernel summary.
    cache = tensor.summary()
    report = ExperimentReport(
        "Fig. 8", "triple-encoding + vacancy cache validation"
    )
    report.add("curves identical", "yes (both runs coincide)", "yes" if identical else "NO")
    report.add(
        "isolated Cu start->end",
        "two coincident curves",
        f"{series_tensor[0]} -> {series_tensor[-1]} (both engines)",
        "long-horizon decrease is Fig. 14's bench",
    )
    report.add("cache hit rate", "n/a (enables the speedup)", f"{cache['hit_rate']:.2f}")
    report.add(
        "mean selection depth",
        "O(log n) tree descent",
        f"{cache['mean_selection_depth']:.1f}",
    )
    report.add(
        "per-step speedup vs cache-all",
        "n/a",
        f"{open_seconds / tensor_seconds:.1f}x",
        f"{N_STEPS} steps, {BOX[0]}^3 cells box",
    )
    experiment_reports(report)

    # The cache must actually help on a multi-vacancy box.
    assert cache["hit_rate"] > 0.2
    assert open_seconds > tensor_seconds

    # Timed kernel: one cached TensorKMC step.
    fresh = TensorKMCEngine(
        _alloy(), nnp_tiny, tet_small, temperature=800.0,
        rng=np.random.default_rng(1),
    )
    benchmark(fresh.step)
