"""Fig. 14 / Sec. 5 — Cu precipitation in a thermally-aged Fe-Cu alloy.

Paper: after long evolution of a 250M-atom box at 573 K with 1.34 at.% Cu,
isolated Cu atoms are significantly reduced, large Cu clusters appear
(max size ~40), and the precipitate number density stabilises around
1.71e26 / m^3.

The same physics runs here on a laptop-scale box with a step budget instead
of a microsecond horizon (see DESIGN.md): vacancy-mediated demixing driven
by the EAM oracle's Cu-Cu binding.  The asserted *shape*: isolated count
falls, the maximum cluster grows by atom aggregation, and the number density
lands on the paper's order of magnitude (1e26/m^3).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import analyse_precipitation, warren_cowley
from repro.constants import VACANCY
from repro.core import TensorKMCEngine
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState

BOX = (14, 14, 14)
N_STEPS = 8000
TEMPERATURE = 600.0  # accelerated aging (paper: 573 K over microseconds)
N_VACANCIES = 6


def _aged_run(eam_small, tet_small, seed=12):
    lattice = LatticeState(BOX)
    rng = np.random.default_rng(seed)
    lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=0.0)
    ids = rng.choice(lattice.n_sites, N_VACANCIES, replace=False)
    lattice.occupancy[ids] = VACANCY
    engine = TensorKMCEngine(
        lattice, eam_small, tet_small, temperature=TEMPERATURE,
        rng=np.random.default_rng(1),
    )
    initial = analyse_precipitation(lattice, 0.0)
    sro_initial = warren_cowley(lattice, rcut=tet_small.rcut).get(0, 0.0)
    mid_density = []
    for _ in range(4):
        engine.run(n_steps=N_STEPS // 4)
        mid_density.append(
            analyse_precipitation(lattice, engine.time).number_density
        )
    final = analyse_precipitation(lattice, engine.time)
    sro_final = warren_cowley(lattice, rcut=tet_small.rcut).get(0, 0.0)
    return engine, initial, final, mid_density, (sro_initial, sro_final)


def test_fig14_precipitation(eam_small, tet_small, experiment_reports, benchmark):
    engine, initial, final, densities, sro = _aged_run(eam_small, tet_small)

    report = ExperimentReport(
        "Fig. 14", "Cu precipitation under thermal aging (scaled box)"
    )
    report.add(
        "isolated Cu atoms",
        "significantly reduced",
        f"{initial.isolated} -> {final.isolated}",
        f"{N_STEPS} events, {BOX[0]}^3 cells",
    )
    report.add(
        "max cluster size",
        "~40 (250M-atom box, 1 s)",
        f"{initial.max_size} -> {final.max_size}",
        "growth bounded by our box/time scale",
    )
    report.add(
        "number density",
        "~1.71e26 / m^3",
        f"{final.number_density:.2e} / m^3",
    )
    report.add(
        "density trend",
        "gradually stabilises",
        " -> ".join(f"{d:.2e}" for d in densities),
    )
    report.add(
        "Warren-Cowley alpha(1NN)",
        "grows with precipitation",
        f"{sro[0]:+.4f} -> {sro[1]:+.4f}",
        "extension: continuous order metric",
    )
    report.add(
        "conditions",
        "573 K, 1.34 at.% Cu",
        f"{TEMPERATURE:.0f} K, 1.34 at.% Cu",
        "temperature raised to accelerate aging",
    )
    experiment_reports(report)

    # Shape assertions.
    assert final.isolated < initial.isolated
    assert sro[1] > sro[0]
    assert final.max_size > initial.max_size
    assert 1e25 < final.number_density < 1e27  # paper's order of magnitude

    # Timed kernel: the cluster analysis of the aged configuration.
    stats = benchmark(lambda: analyse_precipitation(engine.lattice, engine.time))
    assert stats.isolated == final.isolated
