"""Ablation — why the synchronous sublattice algorithm exists (Fig. 2b).

The paper (Sec. 2.2) explains that an MD-style domain decomposition breaks
for AKMC: ranks executing events simultaneously near shared boundaries
produce conflicting hops.  This bench runs the *same workload* under

* the sublattice protocol (all ranks evolve the same octant per cycle), and
* a naive whole-domain mode,

and reports the would-be race count (same-cycle changes from different ranks
within interaction reach of each other) and the resulting species-
conservation failure of the naive mode.
"""

from __future__ import annotations

import numpy as np

from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.parallel import SublatticeKMC


def _run(mode, tet, potential, cycles=16):
    lattice = LatticeState((16, 16, 16))
    lattice.randomize_alloy(np.random.default_rng(3), 0.0134, 0.01)
    before = lattice.species_counts().copy()
    sim = SublatticeKMC(
        lattice, potential, tet, n_ranks=8, grid=(2, 2, 2),
        temperature=900.0, t_stop=5e-10, seed=5, sector_mode=mode,
    )
    sim.run(cycles)
    conserved = bool(
        np.array_equal(sim.gather_global().species_counts(), before)
    )
    return sim, conserved


def test_ablation_conflicts(tet_small, eam_small, experiment_reports, benchmark):
    sub, sub_ok = _run("sublattice", tet_small, eam_small)
    naive, naive_ok = _run("naive", tet_small, eam_small)

    report = ExperimentReport(
        "Ablation: boundary conflicts", "sublattice protocol vs naive decomposition"
    )
    report.add(
        "sublattice mode",
        "conflict-free by construction",
        f"{sub.total_events} events, {sub.proximity_violations} proximity "
        f"violations, species conserved: {sub_ok}",
    )
    report.add(
        "naive mode",
        "conflicting hops near boundaries",
        f"{naive.total_events} events, {naive.proximity_violations} "
        f"proximity violations, species conserved: {naive_ok}",
    )
    experiment_reports(report)

    assert sub.proximity_violations == 0 and sub_ok
    assert naive.proximity_violations > 0 and not naive_ok

    benchmark(lambda: _run("sublattice", tet_small, eam_small, cycles=4))
