"""Ablation — full 9-state feature rebuild vs incremental delta evaluation.

The paper's fast feature operator rebuilds features for all 1 + N_f states
(Sec. 3.4) — on the CPE cluster that batch shape is what saturates the SIMD
pipes.  In a NumPy implementation the alternative of patching only the
affected sites per direction wins at the standard cutoff; this bench
quantifies that trade and verifies exact agreement between the two paths.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constants import CU, FE, VACANCY
from repro.core.tet import TripleEncoding
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.io.report import ExperimentReport
from repro.lattice import LatticeState
from repro.potentials import EAMPotential


def _setup(rcut):
    tet = TripleEncoding(rcut=rcut)
    potential = EAMPotential(tet.shell_distances)
    evaluator = VacancySystemEvaluator(tet, potential)
    lattice = LatticeState((10, 10, 10))
    rng = np.random.default_rng(5)
    lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.1, CU, FE)
    vac = lattice.site_id(0, 5, 5, 5)
    lattice.occupancy[vac] = VACANCY
    vet = lattice.occupancy[lattice.neighbor_ids(vac, tet.all_offsets)]
    return evaluator, vet


def _time(fn, n=15):
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n


def test_ablation_delta_evaluation(experiment_reports, benchmark):
    report = ExperimentReport(
        "Ablation: delta evaluation", "full 9-state rebuild vs affected-site patch"
    )
    for rcut in (2.87, 6.5):
        evaluator, vet = _setup(rcut)
        full = evaluator.evaluate(vet)
        fast = evaluator.evaluate_delta(vet)
        agree = np.allclose(fast.delta, full.delta, atol=1e-9)
        assert agree
        t_full = _time(lambda: evaluator.evaluate(vet))
        t_delta = _time(lambda: evaluator.evaluate_delta(vet))
        report.add(
            f"r_cut = {rcut} A",
            "exact agreement required",
            f"agree to 1e-9; full {t_full * 1e3:.2f} ms vs delta "
            f"{t_delta * 1e3:.2f} ms ({t_full / t_delta:.2f}x)",
        )
        if rcut > 3.0:
            # The delta path must win where the paper's workload lives.
            assert t_delta < t_full
    experiment_reports(report)

    evaluator, vet = _setup(6.5)
    benchmark(lambda: evaluator.evaluate_delta(vet))
