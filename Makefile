# Convenience targets for the TensorKMC reproduction.

.PHONY: install test bench bench-smoke perf-trajectory fault-suite backend-suite rebuild-suite campaign-suite rowcache-suite parallel-suite lint-backend check examples snapshot

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast kernel regression check: times 500 parallel events at two box sizes,
# the EAM cache-miss rebuild path (scalar vs batched), and the NNP miss path
# through the deterministic tiled-GEMM kernel (scalar vs batched, bitwise
# invariance + speedup gate).  Writes BENCH_kernel.json; fails if per-event
# cost scales with N or either batched path misses its gate.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_kernel_smoke.py

# Perf trajectory: diff the freshly written BENCH_kernel.json against the
# committed copy (git:HEAD) and fail on any per-event time or per-phase
# breakdown that regressed by more than PERF_TOLERANCE (default 10%).
perf-trajectory:
	python benchmarks/check_perf_trajectory.py

# Resilience suite: parallel checkpoint/restart + comm fault injection
# tests, then the checkpoint smoke benchmark (save/load cost + bit-exact
# resume, writes BENCH_checkpoint.json).
fault-suite:
	PYTHONPATH=src python -m pytest -x -q tests/test_parallel_checkpoint.py tests/test_fault_injection.py
	PYTHONPATH=src python benchmarks/bench_checkpoint_smoke.py

# Array-backend suite: the shim contract tests (NumPy bit-exactness,
# resolver, torch parity when torch is importable — its tests auto-skip
# otherwise), then the per-backend section of the kernel smoke benchmark.
backend-suite:
	PYTHONPATH=src python -m pytest -x -q tests/test_backend.py
	PYTHONPATH=src python benchmarks/bench_kernel_smoke.py

# Rebuild-path suite: the incremental (delta) rebuild contract tests —
# snapshot/bit-exactness fuzz plus serial and parallel trajectory identity
# across rebuild_path modes — then the rebuild_path section of the kernel
# smoke benchmark (delta vs full, rebuild-phase speedup gate, digest
# identity).
rebuild-suite:
	PYTHONPATH=src python -m pytest -x -q tests/test_rebuild_path.py
	PYTHONPATH=src python -m pytest -x -q benchmarks/bench_kernel_smoke.py::test_rebuild_path_is_faster_and_trajectory_identical

# Campaign suite: run-loop hardening regressions, the cross-replica
# campaign contract tests (bit-identity vs solo runs, hot swap, dead
# replicas) and the cross-mode matrix, then the campaign smoke benchmark
# (R=8 sequential vs shared autobatched evaluation, digest identity +
# aggregate events/sec speedup gate, writes BENCH_campaign.json).
campaign-suite:
	PYTHONPATH=src python -m pytest -x -q tests/test_run_loop_hardening.py tests/test_campaign.py tests/test_mode_matrix.py
	PYTHONPATH=src python benchmarks/bench_campaign_smoke.py

# Row-cache suite: the persistent row-energy memoization contract tests —
# LRU/eviction/epoch-invalidation unit behaviour, packed-signature
# injectivity fuzz, serial/parallel/campaign trajectory identity with the
# cache on vs off (incl. cold-cache checkpoint resume), the batch
# Fenwick-refresh equivalence above the old cap — then the row_cache
# section of the kernel smoke benchmark (rebuild-phase speedup gate at
# vacancy 0.02, digest identity).
rowcache-suite:
	PYTHONPATH=src python -m pytest -x -q tests/test_rowcache.py tests/test_propensity.py
	PYTHONPATH=src python -m pytest -x -q benchmarks/bench_kernel_smoke.py::test_row_cache_is_faster_and_trajectory_identical

# Parallel-executor suite: the process-pool contract tests — pickle
# round-trips of everything that crosses the pipe, inline-vs-process
# trajectory identity (incl. the mode-matrix executor rows), worker-death
# -> structured ProtocolError + recovery, cross-executor checkpoint
# resume — then the parallel smoke benchmark (inline vs process at 4 and
# 8 ranks, unconditional digest identity, hardware-gated events/sec
# speedup, writes BENCH_parallel.json).
parallel-suite:
	PYTHONPATH=src python -m pytest -x -q tests/test_executor.py
	PYTHONPATH=src python benchmarks/bench_parallel_smoke.py

# Lint: fail if a hot-path module under src/repro/{operators,nnp,core}
# grows a new direct `import numpy` outside the shim + frozen exemptions.
lint-backend:
	python tools/check_backend_imports.py

# What CI runs: the backend-import lint, tier-1 tests, the kernel and
# campaign smoke benchmarks (followed by the perf-trajectory diff against
# the committed baselines), the rebuild-path, row-cache, parallel-executor,
# and fault suites.
check:
	$(MAKE) lint-backend
	PYTHONPATH=src python -m pytest -x -q
	$(MAKE) bench-smoke
	$(MAKE) campaign-suite
	$(MAKE) perf-trajectory
	$(MAKE) rebuild-suite
	$(MAKE) rowcache-suite
	$(MAKE) parallel-suite
	$(MAKE) fault-suite

examples:
	python examples/quickstart.py
	python examples/train_nnp.py --fast
	python examples/cu_precipitation.py --steps 4000
	python examples/parallel_sublattice.py --cycles 16
	python examples/vacancy_diffusion.py
	python examples/ternary_alloy.py --steps 3000
	python examples/aging_campaign.py --steps 2000

snapshot:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
