# Convenience targets for the TensorKMC reproduction.

.PHONY: install test bench examples snapshot

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/train_nnp.py --fast
	python examples/cu_precipitation.py --steps 4000
	python examples/parallel_sublattice.py --cycles 16
	python examples/vacancy_diffusion.py
	python examples/ternary_alloy.py --steps 3000
	python examples/aging_campaign.py --steps 2000

snapshot:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
